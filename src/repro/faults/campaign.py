"""The mutation campaign: every mutant through the full detection pipeline.

Each sampled mutation is applied to a private clone of the generated
system (database snapshot → :meth:`ProtocolDatabase.deserialize` →
:meth:`AsuraSystem.from_database`) and pushed through the three detection
layers in the paper's order:

1. **invariants** — the behavioral suite + per-table determinism checks
   + the structural audits (conformance/completeness, see
   :mod:`repro.faults.audits`);
2. **deadlock** — the SQL VCG analysis; a mutant is caught when the cycle
   set differs from the clean system's or the V lookup fails;
3. **simulation** — Figure 2 plus a short random workload; protocol
   lookup failures, coherence violations, deadlocks, and non-quiescent
   runs all count as detection.

Two optional stages extend the pipeline: bounded exhaustive exploration
(``oracle="explore"``) re-scores survivors as ground truth, and the
repair stage (``repair=True``) closes the loop — deadlock-caught mutants
get candidate channel-assignment fixes proposed, re-verified, and ranked
by cost (:class:`repro.core.repair.DeadlockRepairer`), recorded on the
:class:`DetectionReport`.

The per-mutant :class:`DetectionReport` records the earliest layer that
fired (or ESCAPED); :class:`CampaignResult` aggregates the fault-class ×
layer detection matrix that ``repro mutate`` prints and commits as
``BENCH_mutation.json``.  :func:`compare_to_baseline` gates CI: a mutant
that a previous campaign caught at some layer must never be caught later
(or escape) after a code change.

Campaigns run through the crash-safe runtime (:mod:`repro.runtime`, see
``docs/RESILIENCE.md``): each completed mutant is checkpointed to a
durable JSONL journal (``journal_path``) so an interrupted run resumes
(``resume_from``) exactly after the last completed mutant; workers can
be isolated in child processes (``isolation="process"``) with a
per-mutant wall-clock ``timeout`` enforced by a watchdog; a worker
exception outside the detection taxonomy becomes a ``crashed`` report
for that mutant instead of aborting the campaign; and when the batched
invariant sweep or the SQL deadlock engine fails on a mutant, the layer
reruns on the unbatched / Python fallback path with ``degraded=True``
rather than giving up.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..core.database import DatabaseError, ProtocolDatabase
from ..core.deadlock import MissingAssignmentError
from ..core.invariants import InvariantChecker
from ..core.table import LookupError_
from ..runtime import (
    CheckpointJournal,
    JournalError,
    RetryPolicy,
    call_with_retry,
    load_journal,
    run_units,
)
from ..telemetry import get_tracer, new_run_id, span
from .audits import prepare_reference_tables, structural_invariants
from .mutations import FAULT_CLASSES, Mutation, MutationEngine

__all__ = [
    "DetectionReport",
    "CampaignResult",
    "run_campaign",
    "compare_to_baseline",
    "MATRIX_SCHEMA",
    "JOURNAL_KIND",
    "ORACLE_LAYER",
]

#: schema tag of the detection-matrix JSON report.
MATRIX_SCHEMA = "repro.faults.matrix/v1"

#: ``kind`` stamped into campaign checkpoint-journal headers.
JOURNAL_KIND = "mutation-campaign"

#: retry policy for the per-mutant clone (snapshot -> deserialize):
#: cloning races the other workers' page cache only transiently, so a
#: couple of quick backoffs beat failing the whole mutant.
CLONE_RETRY_POLICY = RetryPolicy(max_attempts=3, base_delay=0.02,
                                 max_delay=0.5, jitter=0.5)

#: detection layers, earliest first; ESCAPED sorts after all of them.
LAYERS = ("invariants", "deadlock", "simulation")

#: the optional ground-truth layer (``--oracle explore``): bounded
#: exhaustive exploration of the mutated tables, run only for mutants
#: that survived all of :data:`LAYERS`.
ORACLE_LAYER = "oracle"

_LAYER_RANK = {"invariants": 0, "deadlock": 1, "simulation": 2,
               ORACLE_LAYER: 3, None: 4}


@dataclass(frozen=True)
class DetectionReport:
    """The outcome of one mutant's trip through the pipeline."""

    mutant_id: int
    fault_class: str
    target: str
    description: str
    detected_by: Optional[str]  # LAYERS entry or ORACLE_LAYER; None=ESCAPED
    detail: str = ""
    seconds: float = 0.0
    #: "ok" for a pipeline verdict; "crashed" when the worker raised
    #: outside the detection taxonomy; "timeout" when the watchdog
    #: reaped a hung worker.  Neither failure outcome is a detection.
    outcome: str = "ok"
    #: True when a layer had to fall back (batched invariants ->
    #: unbatched, SQL deadlock engine -> Python) to produce the verdict.
    degraded: bool = False
    #: repair-stage outcome (``RepairResult.to_dict()`` shape, or
    #: ``{"success": False, "error": ...}``) for deadlock-caught mutants
    #: when the campaign ran with ``repair=True``; None otherwise.
    repair: Optional[dict] = None

    @property
    def caught(self) -> bool:
        """Whether any layer detected the mutant."""
        return self.detected_by is not None

    @property
    def caught_pre_sim(self) -> bool:
        """Whether a static layer (invariants or deadlock) detected the
        mutant before any simulation ran — the paper's headline claim."""
        return self.detected_by in ("invariants", "deadlock")

    def to_dict(self) -> dict:
        """JSON-friendly form; timing is excluded so the report is
        byte-for-byte deterministic for a given seed and code version.
        ``outcome``/``degraded`` appear only when non-default, keeping
        healthy-run matrices byte-identical across code versions."""
        d = {
            "mutant_id": self.mutant_id,
            "fault_class": self.fault_class,
            "target": self.target,
            "description": self.description,
            "detected_by": self.detected_by,
            "detail": self.detail,
        }
        if self.outcome != "ok":
            d["outcome"] = self.outcome
        if self.degraded:
            d["degraded"] = True
        if self.repair is not None:
            # Only stamped under --repair, so plain matrices stay
            # byte-identical to pre-repair code versions.
            d["repair"] = self.repair
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "DetectionReport":
        """Rebuild a report from :meth:`to_dict` output (journal resume;
        timing did not survive serialization and restores as 0)."""
        return cls(
            mutant_id=d["mutant_id"],
            fault_class=d["fault_class"],
            target=d.get("target", ""),
            description=d.get("description", ""),
            detected_by=d.get("detected_by"),
            detail=d.get("detail", ""),
            outcome=d.get("outcome", "ok"),
            degraded=bool(d.get("degraded", False)),
            repair=d.get("repair"),
        )


@dataclass
class CampaignResult:
    """All detection reports of one campaign plus the aggregate matrix."""

    seed: int
    assignment: str
    classes: tuple[str, ...]
    #: protocol-family member the campaign mutated ("mesi" = baseline).
    variant: str = "mesi"
    reports: list[DetectionReport] = field(default_factory=list)
    wall_seconds: float = 0.0
    #: mutants restored from a checkpoint journal instead of re-executed
    #: (kept out of :meth:`to_dict` so a resumed campaign's matrix is
    #: identical to an uninterrupted one's).
    resumed: int = 0
    #: exploration-oracle parameters (``{"depth", "nodes", "lines"}``)
    #: when the ground-truth stage ran, else None.  The matrix gains an
    #: ``oracle`` column only when set, so non-oracle matrices stay
    #: byte-identical to pre-oracle code versions.
    oracle: Optional[dict] = None
    #: repair-stage parameters (``{"rounds", "oracle_depth"}``) when the
    #: fifth stage ran, else None.  Like ``oracle``, absent from
    #: :meth:`to_dict` unless set so existing matrices stay stable.
    repair: Optional[dict] = None

    @property
    def count(self) -> int:
        """Number of mutants the campaign ran."""
        return len(self.reports)

    def _layers(self) -> tuple[str, ...]:
        return LAYERS + (ORACLE_LAYER,) if self.oracle else LAYERS

    def matrix(self) -> dict[str, dict[str, int]]:
        """fault class -> {count, invariants, deadlock, simulation,
        [oracle,] escaped} detection counts."""
        layers = self._layers()

        def empty_row() -> dict[str, int]:
            return {"count": 0, **{layer: 0 for layer in layers},
                    "escaped": 0}

        out: dict[str, dict[str, int]] = {}
        for cls in self.classes:
            out[cls] = empty_row()
        for r in self.reports:
            row = out.setdefault(r.fault_class, empty_row())
            row["count"] += 1
            row[r.detected_by or "escaped"] += 1
        return out

    def totals(self) -> dict:
        """Campaign-wide counts and rates."""
        n = self.count
        by_layer = {layer: sum(1 for r in self.reports
                               if r.detected_by == layer)
                    for layer in self._layers()}
        escaped = sum(1 for r in self.reports if not r.caught)
        pre_sim = by_layer["invariants"] + by_layer["deadlock"]
        return {
            "count": n,
            **by_layer,
            "escaped": escaped,
            "crashed": sum(1 for r in self.reports
                           if r.outcome == "crashed"),
            "timeout": sum(1 for r in self.reports
                           if r.outcome == "timeout"),
            "degraded": sum(1 for r in self.reports if r.degraded),
            "pre_sim_rate": round(pre_sim / n, 4) if n else 0.0,
            "detection_rate": round((n - escaped) / n, 4) if n else 0.0,
        } | (
            # Ground-truth bookkeeping, present only under --oracle: a
            # mutant caught *only* by exhaustive exploration is a
            # measured false negative of the three production layers.
            {"false_negatives": by_layer[ORACLE_LAYER],
             "false_negative_rate": (round(by_layer[ORACLE_LAYER] / n, 4)
                                     if n else 0.0)}
            if self.oracle else {}
        ) | (
            # Repair bookkeeping, present only under --repair: how many
            # deadlock-caught mutants got a fix proposed and how many of
            # those fixes survived full re-verification.
            {"repair_attempted": sum(1 for r in self.reports
                                     if r.repair is not None),
             "repaired": sum(1 for r in self.reports
                             if _repair_ok(r.repair))}
            if self.repair else {}
        )

    def to_dict(self) -> dict:
        """The detection-matrix report (``BENCH_mutation.json`` format).
        The ``oracle`` key appears only for oracle campaigns, keeping
        plain matrices byte-identical to pre-oracle code versions."""
        d = {
            "schema": MATRIX_SCHEMA,
            "seed": self.seed,
            "count": self.count,
            "assignment": self.assignment,
            "classes": list(self.classes),
        }
        if self.variant != "mesi":
            # Only stamped off-baseline: MESI matrices stay byte-identical
            # to every pre-family code version.
            d["variant"] = self.variant
        if self.oracle:
            d["oracle"] = dict(self.oracle)
        if self.repair:
            d["repair"] = dict(self.repair)
        d |= {
            "matrix": self.matrix(),
            "totals": self.totals(),
            "mutants": [r.to_dict() for r in self.reports],
        }
        return d

    def render(self) -> str:
        """Human-readable detection matrix."""
        variant = f"variant={self.variant} " if self.variant != "mesi" else ""
        lines = [f"mutation campaign: seed={self.seed} count={self.count} "
                 f"assignment={self.assignment} {variant}"
                 f"({self.wall_seconds:.2f}s)"]
        oracle_col = f"{'oracle':>8}" if self.oracle else ""
        header = (f"{'fault class':<22}{'n':>4}{'invariants':>12}"
                  f"{'deadlock':>10}{'simulation':>12}{oracle_col}"
                  f"{'escaped':>9}")
        lines.append(header)

        def fmt(label: str, row: dict) -> str:
            oracle_cell = (f"{row[ORACLE_LAYER]:>8}" if self.oracle else "")
            return (f"{label:<22}{row['count']:>4}{row['invariants']:>12}"
                    f"{row['deadlock']:>10}{row['simulation']:>12}"
                    f"{oracle_cell}{row['escaped']:>9}")

        matrix = self.matrix()
        for cls, row in matrix.items():
            lines.append(fmt(cls, row))
        t = self.totals()
        lines.append(fmt("total", t))
        pre = t["invariants"] + t["deadlock"]
        lines.append(f"caught before simulation: {pre}/{t['count']} "
                     f"({t['pre_sim_rate'] * 100:.1f}%), overall "
                     f"{t['count'] - t['escaped']}/{t['count']} "
                     f"({t['detection_rate'] * 100:.1f}%)")
        if self.oracle:
            cfg = self.oracle
            lines.append(
                f"oracle (bounded exploration, depth={cfg.get('depth')} "
                f"nodes={cfg.get('nodes')}): {t['false_negatives']} "
                f"false negative(s) of the static+simulation layers "
                f"({t['false_negative_rate'] * 100:.1f}%)")
        if self.repair is not None:
            attempted = [r for r in self.reports if r.repair is not None]
            repaired = sum(1 for r in attempted if _repair_ok(r.repair))
            lines.append(
                f"repair stage (rounds={self.repair.get('rounds')}, "
                f"oracle_depth={self.repair.get('oracle_depth')}): "
                f"{repaired}/{len(attempted)} deadlock-caught mutants "
                f"repaired and re-verified")
            for r in attempted:
                if _repair_ok(r.repair):
                    fixes = "; ".join(
                        f.get("description", f.get("kind", "?"))
                        for f in r.repair.get("fixes", []))
                    lines.append(f"  #{r.mutant_id} repaired: "
                                 f"{fixes or 'no fix needed'}")
                else:
                    why = r.repair.get("error", "fixes failed re-verification")
                    lines.append(f"  #{r.mutant_id} unrepaired: {why}")
        if self.resumed:
            lines.append(f"resumed from journal: {self.resumed} mutants "
                         f"restored, {t['count'] - self.resumed} executed")
        degraded = t["degraded"]
        if degraded:
            lines.append(f"degraded verdicts: {degraded} mutants fell back "
                         f"to the unbatched/python path")
        escaped = [r for r in self.reports
                   if not r.caught and r.outcome == "ok"]
        if escaped:
            lines.append("escaped mutants:")
            for r in escaped:
                lines.append(f"  #{r.mutant_id} {r.fault_class}: "
                             f"{r.description}")
        failures = [r for r in self.reports if r.outcome != "ok"]
        if failures:
            lines.append("worker failures (no verdict):")
            for r in failures:
                lines.append(f"  #{r.mutant_id} {r.fault_class} "
                             f"[{r.outcome}]: {r.detail}")
        return "\n".join(lines)


def _repair_ok(repair: Optional[dict]) -> bool:
    """Whether a repair-stage outcome counts as a full repair: the search
    converged *and* every applied fix survived re-verification."""
    return bool(repair and repair.get("success")
                and all(v.get("ok") for v in repair.get("reverified", [])))


def _detected(mutation: Mutation, layer: Optional[str], detail: str,
              t0: float, degraded: bool = False,
              repair: Optional[dict] = None) -> DetectionReport:
    return DetectionReport(
        mutant_id=mutation.mutant_id,
        fault_class=mutation.fault_class,
        target=mutation.target,
        description=mutation.description,
        detected_by=layer,
        detail=detail,
        seconds=time.perf_counter() - t0,
        degraded=degraded,
        repair=repair,
    )


def _attempt_repair(system, assignment: str, cfg: dict) -> dict:
    """The optional fifth stage: propose channel-assignment fixes for a
    deadlock-caught mutant and re-verify each one.

    Runs on the *live mutated system* (so in-memory channel moves are
    part of the V being repaired, exactly as the deadlock layer saw it).
    Every applied fix is re-checked through the invariant suite, both
    deadlock engines, and — when ``oracle_depth`` > 0 — a bounded
    exhaustive exploration of the repaired assignment.  A repair failure
    never changes the detection verdict; it is recorded alongside it."""
    from ..core.repair import DeadlockRepairer

    tracer = get_tracer()
    tracer.incr("repair.campaign.attempted")
    try:
        repairer = DeadlockRepairer.for_system(system, assignment)
        result = repairer.search(max_rounds=cfg.get("rounds", 4))
        repairer.reverify(result, oracle_depth=cfg.get("oracle_depth", 0))
        out = result.to_dict()
    except (DatabaseError, MissingAssignmentError, LookupError,
            ValueError) as exc:
        tracer.incr("repair.campaign.errors")
        return {"success": False,
                "error": f"{type(exc).__name__}: {exc}".splitlines()[0]}
    if _repair_ok(out):
        tracer.incr("repair.campaign.repaired")
    else:
        tracer.incr("repair.campaign.unrepaired")
    return out


def _failure_report(mutation: Mutation, outcome: str, error: str,
                    seconds: float = 0.0) -> DetectionReport:
    """The report for a mutant whose worker crashed or timed out: no
    verdict, not a detection, but the campaign keeps its slot."""
    return DetectionReport(
        mutant_id=mutation.mutant_id,
        fault_class=mutation.fault_class,
        target=mutation.target,
        description=mutation.description,
        detected_by=None,
        detail=error,
        seconds=seconds,
        outcome=outcome,
    )


def _run_mutant(snapshot: bytes, mutation: Mutation, assignment: str,
                clean_cycles: frozenset, sim_ops: int,
                oracle: Optional[dict] = None,
                repair: Optional[dict] = None) -> DetectionReport:
    """Clone the system, apply one mutation, and run the three layers
    (four with ``oracle``: bounded exhaustive exploration re-scores a
    mutant that survived everything else, turning "escaped" into either
    a ground-truth miss or a confirmed false negative; five with
    ``repair``: deadlock-caught mutants — whether by the VCG layer or by
    an oracle deadlock — additionally get candidate fixes proposed,
    re-verified, and ranked by cost via :func:`_attempt_repair`).

    Each static layer degrades before it detects: a
    :class:`DatabaseError` from the batched invariant sweep retries the
    whole sweep unbatched, and one from the SQL deadlock engine retries
    on the Python oracle.  Only when the fallback path *also* fails does
    the error count as a detection — a mutant that breaks both engines
    really did corrupt the tables, while a mutant that merely trips the
    optimized path still gets a genuine verdict (tagged
    ``degraded=True``)."""
    from ..protocols.family import attach_variant
    from ..sim import figure2_scenario, random_workload
    from ..sim.models import SimProtocolError
    from ..sim.system import CoherenceError

    t0 = time.perf_counter()
    degraded = False
    db = call_with_retry(
        lambda: ProtocolDatabase.deserialize(snapshot),
        CLONE_RETRY_POLICY, metric="mutate.clone_retries")
    try:
        # The variant marker inside the snapshot recovers the right
        # family member; an unmarked (MESI) snapshot attaches as before.
        system = attach_variant(db)
        # Audits must capture the *clean* constraints, so build them
        # before the mutation lands (relax-constraint edits them).
        audits = structural_invariants(system)
        mutation.apply_to(system)

        # Layer 1: invariant sweep + determinism + structural audits.
        def _invariant_sweep(batch: bool):
            report = system.check_invariants(batch=batch)
            checker = InvariantChecker(db, batch=batch)
            checker.extend(audits)
            return report, checker.check_all("structural audits")

        with span("mutate.invariants", mutant=mutation.mutant_id):
            try:
                report, audit_report = _invariant_sweep(batch=True)
            except DatabaseError:
                try:
                    report, audit_report = _invariant_sweep(batch=False)
                    degraded = True
                except DatabaseError as exc:
                    return _detected(
                        mutation, "invariants",
                        f"checker error: {exc}".splitlines()[0], t0,
                        degraded=True)
        failed = [r.name for r in (*report.results, *audit_report.results)
                  if not r.passed]
        if failed:
            return _detected(
                mutation, "invariants",
                f"{len(failed)} checks failed: {', '.join(failed[:4])}", t0,
                degraded=degraded)

        # Layer 2: VCG deadlock analysis against the clean cycle set.
        def _deadlock_cycles(engine: str):
            analysis = system.analyze_deadlocks(
                assignment, engine=engine, workers=1,
                table_name="__mut_dep")
            return frozenset(tuple(c) for c in analysis.cycles())

        def _repaired() -> Optional[dict]:
            # Stage 5, attached to every deadlock-layer detection (and
            # to oracle deadlocks below) when the campaign asked for it.
            return (_attempt_repair(system, assignment, repair)
                    if repair is not None else None)

        with span("mutate.deadlock", mutant=mutation.mutant_id):
            try:
                cycles = _deadlock_cycles("sql")
            except MissingAssignmentError as exc:
                return _detected(mutation, "deadlock",
                                 f"missing V entry: {exc}", t0,
                                 degraded=degraded, repair=_repaired())
            except DatabaseError:
                try:
                    cycles = _deadlock_cycles("python")
                    degraded = True
                except MissingAssignmentError as exc:
                    return _detected(mutation, "deadlock",
                                     f"missing V entry: {exc}", t0,
                                     degraded=True, repair=_repaired())
                except DatabaseError as exc:
                    return _detected(
                        mutation, "deadlock",
                        f"analysis error: {exc}".splitlines()[0], t0,
                        degraded=True, repair=_repaired())
        if cycles != clean_cycles:
            new = sorted(cycles - clean_cycles)
            gone = len(clean_cycles - cycles)
            detail = f"{len(new)} new VCG cycles"
            if new:
                detail += f": {' -> '.join(new[0])}"
            if gone:
                detail += f"; {gone} clean cycles vanished"
            return _detected(mutation, "deadlock", detail, t0,
                             degraded=degraded, repair=_repaired())

        # Layer 3: short simulation workloads.
        with span("mutate.simulate", mutant=mutation.mutant_id):
            try:
                for workload in (
                    figure2_scenario(system, assignment=assignment),
                    random_workload(system, assignment=assignment,
                                    seed=1, n_ops=sim_ops),
                ):
                    result = workload.run()
                    if result.status != "quiescent":
                        return _detected(
                            mutation, "simulation",
                            f"{workload.description}: {result.status} "
                            f"after {result.steps} steps", t0,
                            degraded=degraded)
                    workload.simulator.check_directory_agreement()
            except (LookupError_, SimProtocolError, CoherenceError,
                    DatabaseError) as exc:
                return _detected(
                    mutation, "simulation",
                    f"{type(exc).__name__}: {exc}".splitlines()[0], t0,
                    degraded=degraded)

        # Layer 4 (optional): the exploration oracle.  Runs on the same
        # live system object so in-memory mutations (channel moves) are
        # part of what gets explored, not just the table edits.
        if oracle is not None:
            from ..explore import oracle_check
            with span("mutate.oracle", mutant=mutation.mutant_id):
                verdict = oracle_check(
                    system, assignment=assignment,
                    depth=oracle["depth"], nodes=oracle["nodes"],
                    lines=oracle.get("lines", 1),
                    kernel=oracle.get("kernel", "compiled"))
            if verdict.caught:
                fixed = (_repaired() if verdict.kind == "deadlock"
                         else None)
                return _detected(mutation, ORACLE_LAYER, verdict.detail,
                                 t0, degraded=degraded, repair=fixed)

        return _detected(mutation, None, "", t0, degraded=degraded)
    finally:
        db.close()


def _mutant_unit(payload: tuple) -> DetectionReport:
    """Module-level unit adapter for :func:`repro.runtime.run_units`
    (must be picklable for ``isolation="process"``)."""
    (snapshot, mutation, assignment, clean_cycles, sim_ops, oracle,
     repair) = payload
    return _run_mutant(snapshot, mutation, assignment, clean_cycles,
                       sim_ops, oracle, repair)


def _load_resume_state(resume_from: str, header: dict) -> dict[int, dict]:
    """Journaled completions keyed by mutant id, after validating that
    the journal belongs to this campaign's parameters."""
    journal_header, units = load_journal(resume_from)
    # Symmetric comparison: a key present on either side must match, so
    # a journal written *with* an optional stage (variant/oracle/repair)
    # cannot seed a run without it any more than the reverse.
    for key in sorted(set(header) | set(journal_header)):
        if journal_header.get(key) != header.get(key):
            raise JournalError(
                f"cannot resume: journal {resume_from!r} was written by a "
                f"campaign with {key}={journal_header.get(key)!r}, this "
                f"run has {key}={header.get(key)!r}")
    return {int(i): data for i, data in units.items()}


def run_campaign(
    system=None,
    seed: int = 0,
    count: int = 50,
    classes: Optional[Sequence[str]] = None,
    assignment: str = "v5d",
    variant: Optional[str] = None,
    workers: Optional[int] = None,
    sim_ops: int = 40,
    isolation: str = "thread",
    timeout: Optional[float] = None,
    journal_path: Optional[str] = None,
    resume_from: Optional[str] = None,
    oracle: Optional[str] = None,
    oracle_depth: int = 8,
    oracle_nodes: int = 2,
    oracle_lines: int = 1,
    oracle_kernel: str = "compiled",
    repair: bool = False,
    repair_rounds: int = 4,
    repair_oracle_depth: int = 0,
) -> CampaignResult:
    """Sample ``count`` mutants and measure the detection matrix.

    ``oracle="explore"`` adds a fourth, ground-truth stage: every mutant
    that survives the three production layers is re-scored by bounded
    exhaustive exploration (``oracle_depth``/``oracle_nodes``/
    ``oracle_lines``; ``oracle_kernel`` picks the compiled dispatch
    backend or the interpreted parity oracle — verdicts are identical
    either way), the matrix gains an ``oracle`` column, and the
    totals gain a measured false-negative rate.  The clean system must
    explore violation-free under the same bounds (verified up front —
    its exploration summary is written to the ``__explore_summary``
    table so ``--save-db`` snapshots carry the ground-truth baseline).

    ``system`` defaults to a freshly generated one; when supplied it must
    be clean (the campaign verifies this) and gains the audit reference
    tables as a side effect.  ``workers`` > 1 fans mutants across
    ``isolation`` workers — threads by default, or one child process per
    mutant (``"process"``), which is what makes the per-mutant wall-clock
    ``timeout`` enforceable (the watchdog kills and reports hung units as
    ``timeout`` outcomes).  With telemetry collection enabled the
    campaign runs sequentially, because the tracer is not thread-safe.

    ``journal_path`` checkpoints every completed mutant to a durable
    JSONL journal; ``resume_from`` restores completions from such a
    journal (after validating the campaign parameters match), re-executes
    only the missing mutants, and keeps appending to the same journal
    unless a different ``journal_path`` is given.  Sampling is
    deterministic, so a resumed campaign's matrix is identical to an
    uninterrupted run's.

    ``repair=True`` adds a fifth stage: every mutant caught by the
    deadlock layer (or escaped the production layers and then caught as
    an oracle deadlock) gets candidate channel-assignment fixes proposed
    by :class:`repro.core.repair.DeadlockRepairer`, each re-verified
    through the invariant suite, both deadlock engines, and — with
    ``repair_oracle_depth`` > 0 — a bounded exploration of the repaired
    V, ranked by cost, and appended to the mutant's
    :class:`DetectionReport`.  Repair outcomes are journaled with the
    verdicts, so resumed campaigns do not redo repair searches.

    ``variant`` picks the protocol-family member to mutate (default: the
    MESI baseline, or whatever family member a supplied ``system`` is);
    passing both a ``system`` and a conflicting ``variant`` is an
    error."""
    from ..protocols.family import build_variant

    t0 = time.perf_counter()
    tracer = get_tracer()
    if timeout is not None and isolation != "process":
        raise ValueError(
            "a per-mutant timeout requires isolation='process' "
            "(hung threads cannot be killed)")
    if oracle is not None and oracle != "explore":
        raise ValueError(f"unknown oracle {oracle!r} (expected 'explore')")
    if oracle_kernel not in ("compiled", "interpreted"):
        raise ValueError(f"unknown oracle kernel {oracle_kernel!r} "
                         f"(expected 'compiled' or 'interpreted')")
    oracle_cfg = ({"depth": oracle_depth, "nodes": oracle_nodes,
                   "lines": oracle_lines} if oracle else None)
    # The kernel backend is *not* part of oracle_cfg: the compiled and
    # interpreted kernels are parity-identical, so the choice cannot
    # change a verdict and must not invalidate journals or baselines.
    # It travels to the workers in the unit payload only.
    unit_oracle = dict(oracle_cfg, kernel=oracle_kernel) if oracle_cfg else None
    repair_cfg = ({"rounds": repair_rounds,
                   "oracle_depth": repair_oracle_depth} if repair else None)
    with span("mutate.campaign", count=count, seed=seed,
              assignment=assignment, isolation=isolation):
        if system is None:
            system = build_variant(variant or "mesi")
        else:
            system_variant = getattr(
                getattr(system, "spec", None), "key", "mesi")
            if variant is not None and variant != system_variant:
                raise ValueError(
                    f"variant={variant!r} conflicts with the supplied "
                    f"system's family member {system_variant!r}")
            variant = system_variant
        variant = variant or "mesi"
        prepare_reference_tables(system)

        engine = MutationEngine(system, seed=seed, classes=classes,
                                assignment=assignment)
        mutations = engine.sample(count)

        # ``count`` stays out of the header: the mutant stream is
        # prefix-stable, so resuming with a larger --count is legitimate.
        header = {
            "kind": JOURNAL_KIND,
            "seed": seed,
            "assignment": assignment,
            "classes": list(engine.classes),
            "sim_ops": sim_ops,
        }
        if variant != "mesi":
            # Absent for the baseline so pre-family journals resume.
            header["variant"] = variant
        if oracle_cfg:
            # Oracle verdicts depend on the exploration bounds, so a
            # journal written under one oracle config must not seed a
            # campaign run under another (or under none).
            header["oracle"] = oracle_cfg
        if repair_cfg:
            # Repair outcomes live inside the journaled reports, so a
            # journal written without (or with a different) repair config
            # must not seed this run.  Absent by default so pre-repair
            # journals keep resuming.
            header["repair"] = repair_cfg
        completed: dict[int, dict] = {}
        if resume_from is not None:
            completed = _load_resume_state(resume_from, header)
            if journal_path is None:
                journal_path = resume_from

        # The clean system anchors every comparison; refuse to measure
        # detection against a baseline that is already failing.
        clean = system.check_invariants()
        checker = InvariantChecker(system.db)
        checker.extend(structural_invariants(system))
        clean_audits = checker.check_all("clean audits")
        if not (clean.passed and clean_audits.passed):
            raise ValueError(
                "the clean system already fails its invariants/audits; "
                "mutation detection would be meaningless")
        clean_cycles = frozenset(
            tuple(c) for c in system.analyze_deadlocks(
                assignment, engine="sql", workers=1,
                table_name="__mut_clean_dep").cycles())

        snapshot = system.db.snapshot()

        if oracle_cfg:
            # The oracle is only ground truth if the clean system is
            # violation-free under the same bounds; its exploration
            # summary lands in ``__explore_summary`` (after the mutant
            # snapshot, so clones stay lean) for --save-db round-trips.
            from ..explore import ReachabilityExplorer, ExploreConfig
            clean_explorer = ReachabilityExplorer(system, ExploreConfig(
                nodes=oracle_nodes, depth=oracle_depth, lines=oracle_lines,
                assignment=assignment, workers=1, kernel=oracle_kernel))
            clean_explore = clean_explorer.run()
            if not clean_explore.ok:
                first = clean_explore.violations[0]
                raise ValueError(
                    f"the clean system violates under exploration "
                    f"(depth={oracle_depth}, nodes={oracle_nodes}): "
                    f"{first.kind}: {first.detail}; the oracle column "
                    f"would be meaningless")
            clean_explorer.write_summary(system.db, clean_explore)

        if workers is None:
            workers = 4
        if tracer.enabled and isolation == "thread":
            # The tracer is not thread-safe, so thread workers sharing it
            # must serialize.  Process workers each get a private relay
            # tracer (merged in the single-threaded parent), so process
            # isolation keeps its parallelism under telemetry.
            workers = 1

        restored = [DetectionReport.from_dict(completed[m.mutant_id])
                    for m in mutations if m.mutant_id in completed]
        pending = [m for m in mutations if m.mutant_id not in completed]
        by_id = {m.mutant_id: m for m in pending}

        journal = (CheckpointJournal.open(journal_path, header)
                   if journal_path else None)
        run_id = new_run_id() if tracer.enabled else None
        matrix = {layer: 0 for layer in (*LAYERS, ORACLE_LAYER)}
        matrix["escaped"] = 0
        done = 0
        tracer.emit("campaign.started", run_id=run_id, kind=JOURNAL_KIND,
                    seed=seed, assignment=assignment,
                    total=len(mutations), pending=len(pending),
                    resumed=len(restored), workers=workers,
                    isolation=isolation)
        try:
            def _progress(report: DetectionReport) -> None:
                # Lifecycle events for live observers (``repro watch``,
                # --metrics-out): one ``campaign.unit`` verdict per
                # mutant plus the running partial detection matrix.
                nonlocal done
                done += 1
                matrix[report.detected_by or "escaped"] += 1
                if report.degraded:
                    tracer.emit("unit.degraded", run_id=run_id,
                                unit_id=report.mutant_id,
                                fault_class=report.fault_class)
                tracer.emit("campaign.unit", run_id=run_id,
                            unit_id=report.mutant_id,
                            fault_class=report.fault_class,
                            detected_by=report.detected_by,
                            outcome=report.outcome,
                            seconds=report.seconds,
                            degraded=report.degraded)
                tracer.emit("campaign.progress", run_id=run_id,
                            done=done, total=len(mutations), **matrix)

            def on_result(unit_result) -> None:
                # Runs in the parent as each unit completes — the
                # checkpoint is durable before the next result lands.
                report = _coerce_report(unit_result)
                if journal is not None:
                    journal.record(report.mutant_id, report.to_dict())
                _progress(report)

            def _coerce_report(unit_result) -> DetectionReport:
                if unit_result.ok:
                    return unit_result.value
                return _failure_report(
                    by_id[unit_result.unit_id], unit_result.outcome,
                    unit_result.error or "", unit_result.seconds)

            for report in restored:
                _progress(report)

            units = [(m.mutant_id,
                      (snapshot, m, assignment, clean_cycles, sim_ops,
                       unit_oracle, repair_cfg))
                     for m in pending]
            unit_results = run_units(
                units, _mutant_unit, workers=workers, isolation=isolation,
                timeout=timeout, on_result=on_result, run_id=run_id)
            executed = [_coerce_report(u) for u in unit_results]
        finally:
            if journal is not None:
                journal.close()

        reports = sorted((*restored, *executed),
                         key=lambda r: r.mutant_id)

        tracer.incr("mutate.mutants", len(reports))
        if restored:
            tracer.incr("runtime.resumed_units", len(restored))
        for r in executed:
            if r.outcome != "ok":
                tracer.incr(f"runtime.{r.outcome}")
            if r.degraded:
                tracer.incr("runtime.degraded")
        for r in reports:
            tracer.incr(f"mutate.detected.{r.detected_by}"
                        if r.caught else "mutate.escaped")
        result = CampaignResult(
            seed=seed,
            assignment=assignment,
            classes=engine.classes,
            variant=variant,
            reports=reports,
            wall_seconds=time.perf_counter() - t0,
            resumed=len(restored),
            oracle=oracle_cfg,
            repair=repair_cfg,
        )
        tracer.gauge("mutate.pre_sim_rate", result.totals()["pre_sim_rate"])
        return result


def compare_to_baseline(current: dict, baseline: dict) -> list[str]:
    """Detection regressions of ``current`` vs a committed baseline.

    Returns human-readable failure strings (empty = no regression).  The
    comparison is per mutant: sampling is deterministic and prefix-stable,
    so mutant *i* of a ``--count 25`` smoke run is mutant *i* of the
    committed ``--count 50`` baseline.  A mutant counts as regressed when
    it is now caught at a *later* layer than the baseline recorded (or
    escapes).  Baselines from a different seed/assignment/classes cannot
    be compared and are reported as failures outright."""
    failures: list[str] = []
    if baseline.get("schema") != MATRIX_SCHEMA:
        return [f"baseline has schema {baseline.get('schema')!r}, "
                f"expected {MATRIX_SCHEMA!r}"]
    for key in ("seed", "assignment", "classes", "variant", "oracle",
                "repair"):
        if baseline.get(key) != current.get(key):
            failures.append(
                f"campaign parameter {key!r} differs from baseline "
                f"({current.get(key)!r} vs {baseline.get(key)!r}); "
                f"regenerate the baseline")
    if failures:
        return failures
    base_mutants = baseline.get("mutants", [])
    for cur in current.get("mutants", []):
        i = cur["mutant_id"]
        if i >= len(base_mutants):
            continue  # beyond the committed campaign; nothing to gate
        base = base_mutants[i]
        if (base.get("fault_class") != cur["fault_class"]
                or base.get("description") != cur["description"]):
            failures.append(
                f"mutant #{i} diverged from baseline "
                f"({cur['fault_class']}: {cur['description']!r} vs "
                f"{base.get('fault_class')}: {base.get('description')!r}); "
                f"regenerate the baseline")
            continue
        cur_rank = _LAYER_RANK.get(cur.get("detected_by"),
                                   _LAYER_RANK[None])
        base_rank = _LAYER_RANK.get(base.get("detected_by"),
                                    _LAYER_RANK[None])
        if cur_rank > base_rank:
            now = cur.get("detected_by") or "ESCAPED"
            was = base.get("detected_by") or "ESCAPED"
            failures.append(
                f"mutant #{i} ({cur['fault_class']}: {cur['description']}) "
                f"was caught by {was}, now {now}")
            continue
        if _repair_ok(base.get("repair")) and not _repair_ok(
                cur.get("repair")):
            # Repair regressions gate too: a mutant the baseline campaign
            # repaired (with every fix re-verified) must stay repairable.
            why = (cur.get("repair") or {}).get(
                "error", "fixes no longer pass re-verification")
            failures.append(
                f"mutant #{i} ({cur['fault_class']}: {cur['description']}) "
                f"was repaired and re-verified, now is not ({why})")
    return failures
