"""repro — SQL-based early error detection for cache coherence protocols.

A full reproduction of Subramaniam, "Early Error Detection in Industrial
Strength Cache Coherence Protocols Using SQL" (IPPS 2003): controller
tables generated from SQL column constraints, static deadlock and
invariant checking in the database, property-preserving mapping to
implementation tables, plus an executable table-driven protocol simulator
and an explicit-state model-checker baseline.

Quickstart::

    from repro.protocols.asura import build_system
    sys = build_system()                 # generate all controller tables
    report = sys.check_invariants()      # the paper's ~50 SQL invariants
    analysis = sys.analyze_deadlocks("v5")
    print(analysis.cycles())             # [('VC2', 'VC4')] -- Figure 4
"""

__version__ = "0.1.0"

from . import core

__all__ = ["core", "__version__"]
