"""Fault injection for the verification service: chaos that ships.

A job may carry a ``chaos`` parameter — a small spec string that arms
one injector inside the worker that runs it:

``crash:K``
    ``os._exit(137)`` the instant the K-th unit-of-progress event is
    emitted — a worker SIGKILL from the job's own point of view.  The
    lease expires, the job is re-leased, and the next attempt resumes
    from the journal the dead worker left behind.
``hang:K``
    Block forever at the K-th unit-of-progress event.  The job stops
    emitting events, the worker's progress watchdog ``os._exit(142)``\\ s
    the whole process, and failover proceeds exactly as for a crash.
``sqlite:N``
    The next ``N`` database operations each fail once with a
    *transient* ``sqlite3.OperationalError("database is locked")``
    underneath the retry layer, then succeed when retried.  The run
    degrades (``repro_db_retries`` counts up) but completes correctly
    on the same attempt — no failover involved.
``diskfull:K``
    The K-th checkpoint-journal append raises ``OSError(ENOSPC)`` — the
    spool disk filling up mid-run.  The attempt fails cleanly, the queue
    requeues the job, and the retry succeeds.

Injectors arm only on a job's *first* attempt (:func:`chaos_active`
no-ops for later ones): chaos exists to prove the failover path, and a
fault that re-fired on every attempt would just exhaust ``max_attempts``
instead of demonstrating recovery.  The documented fault → outcome table
lives in ``docs/SERVICE.md``; the end-to-end scenario suite is
``repro chaos`` (:func:`repro.service.harness.run_scenarios`).
"""

from __future__ import annotations

import contextlib
import errno
import os
import sqlite3
import time
from typing import Iterator, Optional

__all__ = ["ChaosError", "ChaosSink", "chaos_active", "parse_chaos"]

#: telemetry event types that count as one unit of job progress —
#: the campaign's per-mutant event and the explorer's per-depth event.
PROGRESS_EVENTS = frozenset({"campaign.unit", "explore.depth"})

#: exit codes the chaos injectors kill the worker with; the supervisor
#: and harness recognise them in restart logs.
CRASH_EXIT = 137
HANG_EXIT = 142


class ChaosError(ValueError):
    """An unparseable chaos spec (caught at job validation time)."""


def parse_chaos(spec: Optional[str]) -> Optional[tuple[str, int]]:
    """``"crash:3"`` → ``("crash", 3)``; ``None``/empty stays ``None``."""
    if not spec:
        return None
    mode, sep, arg = spec.partition(":")
    if not sep or mode not in ("crash", "hang", "sqlite", "diskfull"):
        raise ChaosError(
            f"bad chaos spec {spec!r} (expected crash:K, hang:K, "
            f"sqlite:N, or diskfull:K)")
    try:
        n = int(arg)
    except ValueError:
        raise ChaosError(f"bad chaos spec {spec!r}: {arg!r} is not an int")
    if n < 1:
        raise ChaosError(f"bad chaos spec {spec!r}: count must be >= 1")
    return mode, n


class ChaosSink:
    """A telemetry sink that kills or hangs the worker at the K-th
    unit-of-progress event.  Attached by :func:`chaos_active`; inert for
    the ``sqlite``/``diskfull`` modes."""

    def __init__(self, mode: str, at: int) -> None:
        self.mode = mode
        self.at = at
        self.seen = 0

    def write(self, event: dict) -> None:
        if event.get("type") not in PROGRESS_EVENTS:
            return
        self.seen += 1
        if self.seen < self.at:
            return
        if self.mode == "crash":
            # Bypass every finally/atexit — indistinguishable from
            # SIGKILL to the rest of the system.
            os._exit(CRASH_EXIT)
        if self.mode == "hang":
            # Stop making progress without dying; the worker's own
            # watchdog is what must notice and pull the trigger.
            while True:
                time.sleep(3600)

    def close(self) -> None:
        pass


@contextlib.contextmanager
def _sqlite_faults(n: int) -> Iterator[None]:
    """The next ``n`` retried database operations each fail once,
    transiently.

    Patches :meth:`ProtocolDatabase._retried` to wrap each operation so
    its *first* call raises ``database is locked`` while the fault
    budget lasts — one failure per operation, *underneath* the retry
    layer, so the production :class:`~repro.runtime.retry.RetryPolicy`
    is what recovers (burying one op under more consecutive failures
    than the policy's attempt budget would rightly escalate to FATAL)."""
    from ..core.database import ProtocolDatabase

    budget = [n]
    original = ProtocolDatabase._retried

    def chaotic_retried(self, op):
        fired = [False]

        def flaky():
            if budget[0] > 0 and not fired[0]:
                fired[0] = True
                budget[0] -= 1
                raise sqlite3.OperationalError(
                    "database is locked (chaos injection)")
            return op()
        return original(self, flaky)

    ProtocolDatabase._retried = chaotic_retried
    try:
        yield
    finally:
        ProtocolDatabase._retried = original


@contextlib.contextmanager
def _diskfull_fault(at: int) -> Iterator[None]:
    """The ``at``-th checkpoint-journal append raises ``ENOSPC`` once.

    Patches :meth:`CheckpointJournal._append`; the failed append never
    reaches the file, so the journal stays well-formed and the retried
    attempt resumes from the last durable record."""
    from ..runtime.journal import CheckpointJournal

    state = {"seen": 0, "fired": False}
    original = CheckpointJournal._append

    def failing_append(self, record):
        state["seen"] += 1
        if not state["fired"] and state["seen"] >= at:
            state["fired"] = True
            raise OSError(errno.ENOSPC, "No space left on device "
                          "(chaos injection)")
        return original(self, record)

    CheckpointJournal._append = failing_append
    try:
        yield
    finally:
        CheckpointJournal._append = original


@contextlib.contextmanager
def chaos_active(spec: Optional[str], attempt: int = 1,
                 tracer=None) -> Iterator[None]:
    """Arm the injector named by ``spec`` for the duration of a job
    attempt — but only the *first* attempt; retries of a chaos job run
    clean so the failover they exist to demonstrate can land."""
    parsed = parse_chaos(spec)
    if parsed is None or attempt > 1:
        yield
        return
    mode, n = parsed
    if mode == "sqlite":
        with _sqlite_faults(n):
            yield
    elif mode == "diskfull":
        with _diskfull_fault(n):
            yield
    else:
        sink = ChaosSink(mode, n)
        if tracer is not None:
            tracer.sinks.append(sink)
        try:
            yield
        finally:
            if tracer is not None and sink in tracer.sinks:
                tracer.sinks.remove(sink)
