"""The chaos scenario suite: ``repro chaos``.

Each scenario stands up a real service (a ``repro serve`` subprocess
with its own spool, worker fleet, and short leases), submits a real
mutation campaign, injects exactly one fault, and asserts the
*documented* degraded-but-correct outcome — including, for every
scenario that finishes the campaign, that the recovered detection
matrix is **byte-identical** to an uninterrupted baseline run's.

Scenarios (the fault → outcome table in ``docs/SERVICE.md``):

================  ==========================================================
``worker-crash``  worker ``os._exit(137)`` mid-campaign → lease expires,
                  job re-leased, resumed from its journal, matrix identical
``worker-hang``   worker stops making progress → its watchdog kills it,
                  then exactly the crash path
``server-kill``   SIGKILL the whole service process group mid-campaign →
                  restart replays the queue journal, expires the orphan
                  lease, job resumes, matrix identical
``sqlite``        transient ``database is locked`` errors under the retry
                  layer → run degrades (``repro_db_retries`` > 0) but
                  completes on the first attempt
``diskfull``      ``ENOSPC`` on a journal append → the attempt fails
                  cleanly, the job requeues and succeeds on attempt 2
================  ==========================================================

The suite kills by process *group* so a scenario can never leak worker
processes into the caller's session.
"""

from __future__ import annotations

import os
import shutil
import signal
import subprocess
import sys
import time
from dataclasses import dataclass
from typing import Callable, Optional

from ..runtime import atomic_write_json
from .client import ServiceClient, ServiceUnavailableError

__all__ = ["ScenarioResult", "SCENARIOS", "run_scenarios"]

#: the campaign every scenario runs: small enough to finish in seconds,
#: big enough that a fault at unit 3 leaves real work on both sides.
CAMPAIGN = {"seed": 0, "count": 6, "sim_ops": 10}


@dataclass
class ScenarioResult:
    name: str
    passed: bool
    detail: str
    seconds: float


class ScenarioFailure(AssertionError):
    """A scenario observed something other than its documented outcome."""


class _Service:
    """One ``repro serve`` subprocess in its own process group."""

    def __init__(self, spool: str, lease_ttl: float, workers: int = 1,
                 port: int = 0) -> None:
        self.spool = spool
        self.lease_ttl = lease_ttl
        self.workers = workers
        self.port_file = os.path.join(spool, "port")
        cmd = [sys.executable, "-m", "repro", "serve",
               "--spool", spool, "--port", str(port),
               "--workers", str(workers),
               "--lease-ttl", str(lease_ttl),
               "--stall-timeout", "2", "--poll", "0.2",
               "--sweep-interval", "0.2",
               "--port-file", self.port_file]
        if os.path.exists(self.port_file):
            os.unlink(self.port_file)
        self.proc = subprocess.Popen(cmd, start_new_session=True,
                                     stderr=subprocess.DEVNULL)
        self.port = self._await_port()
        self.client = ServiceClient(f"http://127.0.0.1:{self.port}",
                                    connect_retries=12)

    def _await_port(self, timeout: float = 30.0) -> int:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.proc.poll() is not None:
                raise ScenarioFailure(
                    f"serve exited with code {self.proc.returncode} "
                    f"before binding")
            try:
                with open(self.port_file, encoding="utf-8") as fh:
                    text = fh.read().strip()
                if text:
                    return int(text)
            except OSError:
                pass
            time.sleep(0.05)
        raise ScenarioFailure("serve never wrote its port file")

    def kill_group(self) -> None:
        """SIGKILL the server *and* every worker it spawned."""
        try:
            os.killpg(self.proc.pid, signal.SIGKILL)
        except ProcessLookupError:
            pass
        self.proc.wait()

    def shutdown(self) -> None:
        """Graceful-ish teardown for scenario cleanup."""
        if self.proc.poll() is None:
            try:
                self.proc.terminate()
                self.proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                pass
        self.kill_group()


def _baseline_matrix(spool_root: str) -> str:
    """Run the scenario campaign once, directly and uninterrupted, and
    return the path of its matrix JSON — the byte-for-byte reference."""
    path = os.path.join(spool_root, "baseline.json")
    if os.path.exists(path):
        return path
    from ..faults import run_campaign
    result = run_campaign(seed=CAMPAIGN["seed"], count=CAMPAIGN["count"],
                          sim_ops=CAMPAIGN["sim_ops"], workers=1)
    atomic_write_json(path, result.to_dict())
    return path


def _assert_matrix_identical(baseline_path: str, result_path: str) -> None:
    with open(baseline_path, "rb") as fh:
        baseline = fh.read()
    with open(result_path, "rb") as fh:
        recovered = fh.read()
    if baseline != recovered:
        raise ScenarioFailure(
            f"recovered matrix {result_path} differs from uninterrupted "
            f"baseline {baseline_path}")


def _submit_campaign(client: ServiceClient, chaos: Optional[str] = None,
                     key: Optional[str] = None) -> dict:
    params = dict(CAMPAIGN)
    if chaos:
        params["chaos"] = chaos
    return client.submit("campaign", params, key=key)


def _await_done(client: ServiceClient, job_id: str,
                timeout: float = 300.0) -> dict:
    job = client.wait(job_id, timeout=timeout)
    if job["state"] != "done":
        raise ScenarioFailure(
            f"job {job_id} ended {job['state']!r} "
            f"(error: {job.get('error')})")
    return job


def _result_path(job: dict) -> str:
    path = os.path.join(job["workdir"], "result.json")
    if not os.path.exists(path):
        raise ScenarioFailure(f"job produced no matrix at {path}")
    return path


# -- scenarios ----------------------------------------------------------------

def _scenario_worker_crash(spool: str, baseline: str,
                           lease_ttl: float) -> str:
    svc = _Service(spool, lease_ttl)
    try:
        job = _submit_campaign(svc.client, chaos="crash:3")
        final = _await_done(svc.client, job["job_id"])
        if final["expiries"] < 1:
            raise ScenarioFailure(
                f"expected >=1 lease expiry after the crash, saw "
                f"{final['expiries']}")
        if final["attempts"] < 2:
            raise ScenarioFailure("job was never re-leased")
        _assert_matrix_identical(baseline, _result_path(final))
        return (f"worker died at unit 3, job re-leased "
                f"(attempt {final['attempts']}, "
                f"{final['expiries']} expiry), matrix byte-identical")
    finally:
        svc.shutdown()


def _scenario_worker_hang(spool: str, baseline: str,
                          lease_ttl: float) -> str:
    svc = _Service(spool, lease_ttl)
    try:
        job = _submit_campaign(svc.client, chaos="hang:3")
        final = _await_done(svc.client, job["job_id"])
        if final["expiries"] < 1:
            raise ScenarioFailure(
                "expected the hung worker's lease to expire")
        _assert_matrix_identical(baseline, _result_path(final))
        return (f"hung worker watchdogged, job re-leased "
                f"(attempt {final['attempts']}), matrix byte-identical")
    finally:
        svc.shutdown()


def _scenario_server_kill(spool: str, baseline: str,
                          lease_ttl: float) -> str:
    svc = _Service(spool, lease_ttl)
    port = svc.port
    try:
        job = _submit_campaign(svc.client)
        journal = os.path.join(job["workdir"], "campaign.jsonl")
        # Let the campaign make durable progress, then pull the plug on
        # the whole group — server and workers — mid-flight.
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            try:
                with open(journal, encoding="utf-8") as fh:
                    if sum(1 for line in fh if '"type": "unit"' in line
                           or '"type":"unit"' in line) >= 2:
                        break
            except OSError:
                pass
            time.sleep(0.05)
        else:
            raise ScenarioFailure("campaign never made journal progress")
        svc.kill_group()
        # Same spool, same port: the restarted server must replay the
        # queue journal (tolerating any half-written tail), expire the
        # orphan lease, and let a fresh worker resume the job.
        svc2 = _Service(spool, lease_ttl, port=port)
        try:
            final = _await_done(svc2.client, job["job_id"])
            if final["expiries"] < 1:
                raise ScenarioFailure(
                    "expected the dead fleet's lease to be reclaimed")
            _assert_matrix_identical(baseline, _result_path(final))
            stats = svc2.client.stats()
            return (f"server+fleet SIGKILLed after >=2 units; restart "
                    f"replayed {stats['jobs']} job(s), reclaimed the "
                    f"orphan lease, resumed; matrix byte-identical")
        finally:
            svc2.shutdown()
    finally:
        svc.shutdown()


def _scenario_sqlite(spool: str, baseline: str, lease_ttl: float) -> str:
    svc = _Service(spool, lease_ttl)
    try:
        job = _submit_campaign(svc.client, chaos="sqlite:3")
        final = _await_done(svc.client, job["job_id"])
        if final["attempts"] != 1:
            raise ScenarioFailure(
                f"transient sqlite errors should not cost the attempt "
                f"(took {final['attempts']})")
        _assert_matrix_identical(baseline, _result_path(final))
        return ("3 transient sqlite errors absorbed by the retry layer "
                "on attempt 1, matrix byte-identical")
    finally:
        svc.shutdown()


def _scenario_diskfull(spool: str, baseline: str, lease_ttl: float) -> str:
    svc = _Service(spool, lease_ttl)
    try:
        job = _submit_campaign(svc.client, chaos="diskfull:2")
        final = _await_done(svc.client, job["job_id"])
        if final["attempts"] < 2:
            raise ScenarioFailure(
                f"ENOSPC should fail attempt 1 and requeue; job finished "
                f"on attempt {final['attempts']}")
        if not (final.get("error") or "").startswith("OSError"):
            # the attempt-1 diagnostic is preserved on the job
            raise ScenarioFailure(
                f"expected the ENOSPC diagnostic on the job, saw "
                f"{final.get('error')!r}")
        _assert_matrix_identical(baseline, _result_path(final))
        return (f"ENOSPC failed attempt 1 ({final['error']}), attempt 2 "
                f"resumed from the journal, matrix byte-identical")
    finally:
        svc.shutdown()


SCENARIOS: dict[str, Callable[[str, str, float], str]] = {
    "worker-crash": _scenario_worker_crash,
    "worker-hang": _scenario_worker_hang,
    "server-kill": _scenario_server_kill,
    "sqlite": _scenario_sqlite,
    "diskfull": _scenario_diskfull,
}


def run_scenarios(spool_root: str, names: Optional[list] = None,
                  lease_ttl: float = 3.0,
                  log: Callable[[str], None] = print) -> list[ScenarioResult]:
    """Run the named scenarios (default: all) under ``spool_root``,
    one fresh spool each; returns their results."""
    os.makedirs(spool_root, exist_ok=True)
    names = list(names or SCENARIOS)
    unknown = sorted(set(names) - set(SCENARIOS))
    if unknown:
        raise ValueError(f"unknown scenario(s): {', '.join(unknown)} "
                         f"(have: {', '.join(SCENARIOS)})")
    log(f"chaos: building the uninterrupted baseline matrix "
        f"(seed={CAMPAIGN['seed']} count={CAMPAIGN['count']}) …")
    baseline = _baseline_matrix(spool_root)
    results: list[ScenarioResult] = []
    for name in names:
        spool = os.path.join(spool_root, name)
        shutil.rmtree(spool, ignore_errors=True)
        os.makedirs(spool)
        log(f"chaos: [{name}] running …")
        t0 = time.monotonic()
        try:
            detail = SCENARIOS[name](spool, baseline, lease_ttl)
            passed = True
        except (ScenarioFailure, ServiceUnavailableError,
                TimeoutError) as exc:
            detail = f"{type(exc).__name__}: {exc}"
            passed = False
        seconds = time.monotonic() - t0
        results.append(ScenarioResult(name, passed, detail, seconds))
        log(f"chaos: [{name}] {'PASS' if passed else 'FAIL'} "
            f"({seconds:.1f}s) — {detail}")
    return results
