"""Stdlib HTTP client for the verification service.

Used by ``repro submit`` / ``repro jobs``, by the worker fleet (claim /
renew / complete), and by the chaos harness.  Plain ``urllib`` with a
small transient-retry loop: a connection refused or reset is exactly
what a client sees while the server is being killed and restarted, and
the service's whole point is that such a blip is survivable — so the
client retries those with backoff instead of surfacing them.  HTTP
error *statuses* are never retried here (409 means the lease is gone no
matter how often you ask; 429 carries a Retry-After for the caller to
honour).
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Optional

__all__ = [
    "ServiceClient",
    "ServiceError",
    "BackpressureError",
    "LeaseLostError",
    "ServiceUnavailableError",
]


class ServiceError(RuntimeError):
    """An HTTP error response from the service."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class BackpressureError(ServiceError):
    """429 — the queue is full; retry after :attr:`retry_after` seconds."""

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(429, message)
        self.retry_after = retry_after


class LeaseLostError(ServiceError):
    """409 — the lease this worker held was re-granted or the job left
    the leased state; abandon the attempt."""

    def __init__(self, message: str) -> None:
        super().__init__(409, message)


class ServiceUnavailableError(ServiceError):
    """The server could not be reached at all (after retries)."""

    def __init__(self, message: str) -> None:
        super().__init__(0, message)


class ServiceClient:
    """Client for one service endpoint (``http://host:port``).

    ``connect_retries`` bounds how long a connection-level failure is
    retried (with capped exponential backoff) before surfacing as
    :class:`ServiceUnavailableError` — the window a server restart has
    to come back within."""

    def __init__(self, base_url: str, timeout: float = 10.0,
                 connect_retries: int = 8,
                 backoff: float = 0.25) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.connect_retries = connect_retries
        self.backoff = backoff

    # -- transport ------------------------------------------------------------
    def _request(self, method: str, path: str,
                 body: Optional[dict] = None) -> tuple[int, dict[str, str],
                                                       bytes]:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        last_exc: Optional[Exception] = None
        for attempt in range(self.connect_retries + 1):
            req = urllib.request.Request(
                self.base_url + path, data=data, headers=headers,
                method=method)
            try:
                with urllib.request.urlopen(
                        req, timeout=self.timeout) as resp:
                    return (resp.status,
                            {k.lower(): v for k, v in resp.headers.items()},
                            resp.read())
            except urllib.error.HTTPError as exc:
                # A status line got through: the server is alive and
                # said no.  Never retried at this layer.
                payload = exc.read()
                return (exc.code,
                        {k.lower(): v for k, v in exc.headers.items()},
                        payload)
            except (urllib.error.URLError, ConnectionError,
                    TimeoutError, OSError) as exc:
                last_exc = exc
                if attempt < self.connect_retries:
                    time.sleep(min(self.backoff * (2 ** attempt), 2.0))
        raise ServiceUnavailableError(
            f"cannot reach {self.base_url}: {last_exc}")

    def _json(self, method: str, path: str,
              body: Optional[dict] = None) -> Any:
        status, headers, payload = self._request(method, path, body)
        if status == 204:
            return None
        try:
            doc = json.loads(payload.decode("utf-8")) if payload else {}
        except json.JSONDecodeError:
            doc = {"error": payload.decode("utf-8", "replace")[:200]}
        if status == 429:
            raise BackpressureError(
                doc.get("error", "queue is full"),
                retry_after=float(headers.get("retry-after", "1")))
        if status == 409:
            raise LeaseLostError(doc.get("error", "lease lost"))
        if status >= 400:
            raise ServiceError(status, doc.get("error", f"status {status}"))
        return doc

    # -- client-facing API ----------------------------------------------------
    def submit(self, kind: str, params: Optional[dict] = None,
               key: Optional[str] = None,
               max_attempts: Optional[int] = None) -> dict:
        body: dict = {"kind": kind, "params": params or {}}
        if key is not None:
            body["key"] = key
        if max_attempts is not None:
            body["max_attempts"] = max_attempts
        return self._json("POST", "/jobs", body)

    def job(self, job_id: str) -> dict:
        return self._json("GET", f"/jobs/{job_id}")

    def jobs(self, state: Optional[str] = None) -> list[dict]:
        path = "/jobs" + (f"?state={state}" if state else "")
        return self._json("GET", path)["jobs"]

    def status(self, job_id: str) -> dict:
        """Live progress of a job (from its journal and event stream)."""
        return self._json("GET", f"/jobs/{job_id}/status")

    def cancel(self, job_id: str) -> dict:
        return self._json("POST", f"/jobs/{job_id}/cancel")

    def wait(self, job_id: str, timeout: float = 300.0,
             poll: float = 0.5) -> dict:
        """Poll until the job reaches a terminal state (or raise
        ``TimeoutError``); returns the final job document."""
        deadline = time.monotonic() + timeout
        while True:
            doc = self.job(job_id)
            if doc["state"] in ("done", "failed", "cancelled"):
                return doc
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {doc['state']} after {timeout}s")
            time.sleep(poll)

    # -- worker-facing API ----------------------------------------------------
    def claim(self, worker: str) -> Optional[dict]:
        """Claim the next queued job; ``None`` when the queue is idle or
        the server is draining."""
        return self._json("POST", "/lease/claim", {"worker": worker})

    def renew(self, job_id: str, token: str) -> float:
        doc = self._json("POST", "/lease/renew",
                         {"job_id": job_id, "token": token})
        return float(doc["deadline"])

    def complete(self, job_id: str, token: str,
                 result: Optional[dict] = None) -> bool:
        doc = self._json("POST", "/lease/complete",
                         {"job_id": job_id, "token": token,
                          "result": result})
        return bool(doc["won"])

    def fail(self, job_id: str, token: str, error: str) -> bool:
        doc = self._json("POST", "/lease/fail",
                         {"job_id": job_id, "token": token, "error": error})
        return bool(doc["won"])

    # -- operational API -------------------------------------------------------
    def health(self) -> dict:
        return self._json("GET", "/healthz")

    def ready(self) -> bool:
        status, _, _ = self._request("GET", "/readyz")
        return status == 200

    def stats(self) -> dict:
        return self._json("GET", "/stats")

    def metrics_text(self) -> str:
        _, _, payload = self._request("GET", "/metrics")
        return payload.decode("utf-8")

    def drain(self) -> dict:
        """Ask the server to stop granting claims and finish in-flight
        work (what SIGTERM does, reachable over HTTP for the tests)."""
        return self._json("POST", "/drain")
