"""Job model and lifecycle state machine of the verification service.

A *job* is one unit of verification work a client submitted: a mutation
campaign, a bounded exploration, an invariant check, a family
pipeline stage, or a deadlock repair search.  Its lifecycle is a small, strictly validated state
machine (documented with a failure-mode table in ``docs/SERVICE.md``)::

    queued ──claim──▶ leased ──complete──▶ done
      ▲                 │ │
      │   fail/expire   │ └──fail (attempts exhausted)──▶ failed
      └─────────────────┘
    queued/leased ──cancel──▶ cancelled

Every transition is journaled by the :class:`~repro.service.queue.JobQueue`
as a full job snapshot, so replaying the queue journal reconstructs the
exact state — leases, attempts, duplicate-result counters — the service
held when it died.

Job parameters are validated against a per-kind whitelist at submission
time: the service runs jobs in its own workers, so an unknown parameter
is rejected with a 400 at the front door rather than crashing a worker
an hour later.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = [
    "JOB_KINDS",
    "JOB_STATES",
    "TERMINAL_STATES",
    "Job",
    "JobValidationError",
    "validate_params",
]

#: work the service knows how to run (see :mod:`repro.service.runner`).
JOB_KINDS = ("campaign", "explore", "check", "family", "repair")

#: every state a job can be in.
JOB_STATES = ("queued", "leased", "done", "failed", "cancelled")

#: states a job never leaves.
TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})

#: per-kind parameter whitelist with defaults.  ``None`` defaults mean
#: "runner decides"; every submitted key must appear here for its kind.
_PARAM_SPECS: dict[str, dict[str, Any]] = {
    "campaign": {
        "seed": 0, "count": 8, "classes": None, "assignment": "v5d",
        "variant": None, "sim_ops": 40, "oracle": None, "oracle_depth": 8,
        "oracle_nodes": 2, "chaos": None,
    },
    "explore": {
        "nodes": 2, "depth": 8, "lines": 1, "assignment": "v5d",
        "variant": None, "workers": 1, "kernel": "compiled", "chaos": None,
    },
    "check": {
        "variant": None, "chaos": None,
    },
    "family": {
        "variant": None, "nodes": 2, "assignment": "v5d", "chaos": None,
    },
    "repair": {
        "assignment": "v5", "variant": None, "rounds": 4,
        "oracle_depth": 0, "chaos": None,
    },
}

_INT_PARAMS = frozenset({
    "seed", "count", "sim_ops", "oracle_depth", "oracle_nodes",
    "nodes", "depth", "lines", "workers", "rounds",
})


class JobValidationError(ValueError):
    """A submission the service refuses: unknown kind, unknown or
    ill-typed parameter.  The message is the client-facing diagnostic."""


def validate_params(kind: str, params: Optional[dict]) -> dict:
    """Normalized parameters for ``kind``: defaults filled in, unknown
    keys and un-JSON-able values rejected."""
    if kind not in JOB_KINDS:
        raise JobValidationError(
            f"unknown job kind {kind!r}; choose from {', '.join(JOB_KINDS)}")
    spec = _PARAM_SPECS[kind]
    params = dict(params or {})
    unknown = sorted(set(params) - set(spec))
    if unknown:
        raise JobValidationError(
            f"unknown parameter(s) for kind {kind!r}: "
            f"{', '.join(unknown)} (allowed: {', '.join(sorted(spec))})")
    merged = dict(spec)
    merged.update(params)
    for key in _INT_PARAMS & set(merged):
        value = merged[key]
        if value is not None and not isinstance(value, int):
            raise JobValidationError(
                f"parameter {key!r} must be an integer, got {value!r}")
    for key, value in merged.items():
        if value is not None and not isinstance(
                value, (str, int, float, bool)):
            raise JobValidationError(
                f"parameter {key!r} must be a scalar, got "
                f"{type(value).__name__}")
    if merged.get("chaos") is not None:
        from .chaos import ChaosError, parse_chaos
        try:
            parse_chaos(merged["chaos"])
        except ChaosError as exc:
            raise JobValidationError(str(exc)) from exc
    return merged


@dataclass
class Lease:
    """One worker's claim on a job: the bearer ``token`` authorizes
    heartbeats and result submission until ``deadline`` (inclusive —
    a heartbeat arriving *exactly* at the deadline still renews)."""

    worker: str
    token: str
    deadline: float
    granted_at: float

    def to_dict(self) -> dict:
        return {"worker": self.worker, "token": self.token,
                "deadline": self.deadline, "granted_at": self.granted_at}

    @classmethod
    def from_dict(cls, d: dict) -> "Lease":
        return cls(worker=d["worker"], token=d["token"],
                   deadline=float(d["deadline"]),
                   granted_at=float(d["granted_at"]))


@dataclass
class Job:
    """One submitted unit of verification work and its full history."""

    job_id: str
    kind: str
    params: dict
    #: client-supplied idempotency key; resubmitting the same key
    #: returns the existing job instead of queuing a duplicate.
    key: Optional[str] = None
    state: str = "queued"
    #: execution attempts started so far (claim increments).
    attempts: int = 0
    max_attempts: int = 3
    lease: Optional[Lease] = None
    #: summary the winning worker reported on completion.
    result: Optional[dict] = None
    #: terminal diagnostic for ``failed``; last attempt error otherwise.
    error: Optional[str] = None
    #: results discarded because an earlier attempt's durable result won.
    duplicates: int = 0
    #: lease expiries the job survived (worker death / hang failovers).
    expiries: int = 0
    #: per-job artifact directory under the service spool.
    workdir: Optional[str] = None
    submitted_at: float = field(default_factory=time.time)
    updated_at: float = field(default_factory=time.time)

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def to_dict(self) -> dict:
        """JSON snapshot — what the queue journals and the API serves."""
        return {
            "job_id": self.job_id,
            "kind": self.kind,
            "params": dict(self.params),
            "key": self.key,
            "state": self.state,
            "attempts": self.attempts,
            "max_attempts": self.max_attempts,
            "lease": self.lease.to_dict() if self.lease else None,
            "result": self.result,
            "error": self.error,
            "duplicates": self.duplicates,
            "expiries": self.expiries,
            "workdir": self.workdir,
            "submitted_at": self.submitted_at,
            "updated_at": self.updated_at,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Job":
        lease = d.get("lease")
        return cls(
            job_id=d["job_id"],
            kind=d["kind"],
            params=dict(d.get("params") or {}),
            key=d.get("key"),
            state=d.get("state", "queued"),
            attempts=int(d.get("attempts", 0)),
            max_attempts=int(d.get("max_attempts", 3)),
            lease=Lease.from_dict(lease) if lease else None,
            result=d.get("result"),
            error=d.get("error"),
            duplicates=int(d.get("duplicates", 0)),
            expiries=int(d.get("expiries", 0)),
            workdir=d.get("workdir"),
            submitted_at=float(d.get("submitted_at", 0.0)),
            updated_at=float(d.get("updated_at", 0.0)),
        )
