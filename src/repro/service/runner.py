"""Job execution: what a worker actually does with a claimed job.

Each job runs inside a per-job working directory under the service
spool (``spool/<job_id>/``) holding

* ``campaign.jsonl`` / ``explore.jsonl`` — the run's own
  :class:`~repro.runtime.journal.CheckpointJournal`.  This is what makes
  failover *be* resume: a re-leased job finds the dead worker's journal
  in the same workdir and continues after the last durable unit, so the
  recovered detection matrix is byte-identical to an uninterrupted
  run's (matrices exclude timing by design).
* ``events.jsonl`` — the job's live telemetry stream, which feeds the
  worker's progress-driven watchdog, the server's per-job status
  endpoint, and ``repro watch``.
* ``result.json`` — the full result document, written atomically in
  exactly the ``--matrix-out`` format so CI can diff a failed-over run
  against an uninterrupted baseline byte for byte.

The job summary returned to the queue is deliberately small (counts and
artifact paths, not the mutant list): it is journaled with every
subsequent state change of the job.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Optional

from .. import telemetry
from ..runtime import atomic_write_json
from .chaos import chaos_active

__all__ = ["run_job", "JOURNAL_NAMES"]

#: per-kind checkpoint journal filename inside the job workdir.
JOURNAL_NAMES = {"campaign": "campaign.jsonl", "explore": "explore.jsonl",
                 "repair": "repair.jsonl"}


def _campaign(params: dict, workdir: str) -> dict:
    from ..faults import run_campaign

    journal = os.path.join(workdir, JOURNAL_NAMES["campaign"])
    resume = journal if (os.path.exists(journal)
                         and os.path.getsize(journal) > 0) else None
    classes = params.get("classes")
    if isinstance(classes, str):
        classes = tuple(c.strip() for c in classes.split(",") if c.strip())
    result = run_campaign(
        seed=params["seed"], count=params["count"], classes=classes,
        assignment=params["assignment"], variant=params.get("variant"),
        sim_ops=params["sim_ops"], workers=1,
        journal_path=journal, resume_from=resume,
        oracle=params.get("oracle"), oracle_depth=params["oracle_depth"],
        oracle_nodes=params["oracle_nodes"])
    doc = result.to_dict()
    atomic_write_json(os.path.join(workdir, "result.json"), doc)
    totals = result.totals()
    return {
        "totals": totals,
        "resumed": result.resumed,
        "matrix_path": os.path.join(workdir, "result.json"),
        "journal_path": journal,
    }


def _explore(params: dict, workdir: str) -> dict:
    from ..explore import ExploreConfig, ReachabilityExplorer
    from ..protocols.family import build_variant

    journal = os.path.join(workdir, JOURNAL_NAMES["explore"])
    resume = journal if (os.path.exists(journal)
                         and os.path.getsize(journal) > 0) else None
    system = build_variant(params.get("variant") or "mesi")
    config = ExploreConfig(
        nodes=params["nodes"], depth=params["depth"],
        lines=params["lines"], assignment=params["assignment"],
        workers=params["workers"], kernel=params["kernel"],
        variant=params.get("variant"),
        journal_path=journal, resume_from=resume)
    explorer = ReachabilityExplorer(system, config)
    try:
        result = explorer.run()
    finally:
        explorer.close()
        system.db.close()
    doc = result.to_dict()
    atomic_write_json(os.path.join(workdir, "result.json"), doc)
    return {
        "ok": result.ok,
        "states": result.states,
        "transitions": result.transitions,
        "violations": len(result.violations),
        "deadlocks": len(result.deadlocks),
        "result_path": os.path.join(workdir, "result.json"),
        "journal_path": journal,
    }


def _check(params: dict, workdir: str) -> dict:
    from ..protocols.family import build_variant

    system = build_variant(params.get("variant") or "mesi")
    try:
        report = system.check_invariants()
    finally:
        system.db.close()
    doc = {"passed": report.passed, "checks": len(report.results),
           "failed": [r.name for r in report.results if not r.passed]}
    atomic_write_json(os.path.join(workdir, "result.json"), doc)
    return doc


def _family(params: dict, workdir: str) -> dict:
    from ..protocols.family import build_variant
    from ..sim import figure2_scenario

    variant = params.get("variant") or "mesi"
    assignment = params["assignment"]
    system = build_variant(variant)
    try:
        report = system.check_invariants()
        cycles = system.analyze_deadlocks(assignment).cycles()
        sim = figure2_scenario(system, assignment=assignment).run()
    finally:
        system.db.close()
    doc = {
        "variant": variant,
        "invariants": {"passed": report.passed,
                       "checks": len(report.results)},
        "deadlock": {assignment: {"free": not cycles,
                                  "cycles": len(cycles)}},
        "simulation": {"fig2": {"status": sim.status, "steps": sim.steps}},
        "clean": bool(report.passed and not cycles
                      and sim.status == "quiescent"),
    }
    atomic_write_json(os.path.join(workdir, "result.json"), doc)
    return doc


def _repair(params: dict, workdir: str) -> dict:
    """Deadlock repair search as a service job.  Long searches are
    journaled to ``repair.jsonl`` in the workdir, so — like campaigns —
    failover *is* resume: a re-leased job replays the dead worker's
    applied fixes and continues from the next round."""
    from ..core.repair import DeadlockRepairer
    from ..protocols.family import build_variant

    journal = os.path.join(workdir, JOURNAL_NAMES["repair"])
    system = build_variant(params.get("variant") or "mesi")
    try:
        repairer = DeadlockRepairer.for_system(system, params["assignment"])
        result = repairer.search(max_rounds=params["rounds"],
                                 journal_path=journal)
        repairer.reverify(result, oracle_depth=params["oracle_depth"])
    finally:
        system.db.close()
    doc = result.to_dict()
    atomic_write_json(os.path.join(workdir, "result.json"), doc)
    return {
        "success": result.success,
        "fixes": len(result.applied),
        "total_cost": result.total_cost,
        "evaluated": result.evaluated,
        "reverified_ok": all(v.get("ok") for v in result.reverified),
        "result_path": os.path.join(workdir, "result.json"),
        "journal_path": journal,
    }


_RUNNERS: dict[str, Callable[[dict, str], dict]] = {
    "campaign": _campaign,
    "explore": _explore,
    "check": _check,
    "family": _family,
    "repair": _repair,
}


def run_job(kind: str, params: dict, workdir: str, attempt: int = 1,
            progress_sink: Optional[Any] = None) -> dict:
    """Execute one claimed job attempt and return its summary dict.

    Configures job-scoped telemetry streaming to
    ``<workdir>/events.jsonl`` (rewritten per attempt — the stream shows
    the attempt currently running), installs the job's
    chaos injectors when ``params["chaos"]`` is set and this is the
    first attempt, and always tears telemetry back down.  Exceptions
    propagate to the worker, which reports the attempt failed."""
    os.makedirs(workdir, exist_ok=True)
    events = os.path.join(workdir, "events.jsonl")
    sinks = [progress_sink] if progress_sink is not None else []
    tracer = telemetry.configure(trace_path=events, sinks=sinks)
    try:
        with chaos_active(params.get("chaos"), attempt=attempt,
                          tracer=tracer):
            return _RUNNERS[kind](params, workdir)
    finally:
        telemetry.shutdown()
