"""The always-on front end: asyncio HTTP server over the durable queue.

Dependency-free HTTP/1.1 (``asyncio.start_server`` + a hand-rolled
request parser, ``Connection: close`` on every response — the clients
are scripts and workers, not browsers), fronting one
:class:`~repro.service.queue.JobQueue`:

* **Submission** — ``POST /jobs`` validates, journals, and answers with
  the job document; an idempotency ``key`` makes retried submissions
  return the original job (200) instead of queuing twice (201).  A full
  queue answers ``429`` with ``Retry-After`` — backpressure, not an
  error page.
* **Leases** — ``/lease/claim|renew|complete|fail`` are the worker
  protocol; stale tokens come back ``409``.
* **Observation** — ``/healthz`` (process up), ``/readyz`` (taking
  work; ``503`` while draining), ``/metrics`` (OpenMetrics via the
  telemetry exporter, queue gauges refreshed per scrape),
  ``GET /jobs[?state=]``, ``GET /jobs/<id>``, and
  ``GET /jobs/<id>/status`` — the live per-job view, read from the
  job's own checkpoint journal and telemetry event stream with the same
  torn-tail-tolerant readers ``repro watch`` uses.
* **Lifecycle** — the sweeper task expires orphaned leases (requeueing
  the work), compacts the queue journal when it grows shaggy, and
  restarts supervised workers that died; SIGTERM (or ``POST /drain``)
  stops claims, lets leased jobs finish, then exits.  On startup the
  queue journal is replayed; a half-written tail record (the append a
  ``kill -9`` interrupted) is truncated by the journal layer and the
  affected job simply resumes from its previous durable state.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import time
from typing import Any, Optional

from ..runtime.watch import watch_once
from ..telemetry import (
    NullTracer,
    Tracer,
    get_tracer,
    render_openmetrics,
    set_tracer,
)
from .jobs import JOB_STATES, JobValidationError
from .queue import (
    JobQueue,
    LeaseError,
    QueueFullError,
    UnknownJobError,
)
from .runner import JOURNAL_NAMES

__all__ = ["VerificationServer", "serve"]

#: what a 429 tells clients to wait before resubmitting.
RETRY_AFTER_SECONDS = 2


class _HttpError(Exception):
    def __init__(self, status: int, message: str,
                 headers: Optional[dict] = None) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = headers or {}


_REASONS = {200: "OK", 201: "Created", 202: "Accepted", 204: "No Content",
            400: "Bad Request", 404: "Not Found", 405: "Method Not Allowed",
            409: "Conflict", 413: "Payload Too Large",
            429: "Too Many Requests", 500: "Internal Server Error",
            503: "Service Unavailable"}

_MAX_BODY = 1 << 20


class VerificationServer:
    """One service instance: queue + HTTP front end + sweeper +
    (optionally) a supervised worker fleet."""

    def __init__(self, queue: JobQueue, host: str = "127.0.0.1",
                 port: int = 0, sweep_interval: float = 1.0,
                 workers: int = 0, worker_args: Optional[list] = None,
                 log=None) -> None:
        self.queue = queue
        self.host = host
        self.port = port
        self.sweep_interval = sweep_interval
        self.worker_count = workers
        self.worker_args = list(worker_args or ())
        self.log = log or (lambda msg: print(msg, file=sys.stderr,
                                             flush=True))
        self.draining = False
        self.started_at = time.time()
        self._server: Optional[asyncio.base_events.Server] = None
        self._sweeper: Optional[asyncio.Task] = None
        self._stop = asyncio.Event()
        self._workers: list[subprocess.Popen] = []
        self._worker_restarts = 0

    # -- lifecycle -------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listener, reclaim orphan leases, start the sweeper
        and the worker fleet."""
        if isinstance(get_tracer(), NullTracer):
            # /metrics needs a recording tracer or every queue counter
            # stays a silent no-op.  No sinks: nothing to flush, the
            # registry is read at scrape time.
            set_tracer(Tracer(sinks=[], slow_sql_seconds=None))
        expired = self.queue.expire_leases()
        if expired:
            self.log(f"serve: reclaimed {len(expired)} orphaned lease(s) "
                     f"from a previous life")
        if self.queue.replayed:
            self.log(f"serve: replayed {self.queue.replayed} job(s) from "
                     f"the queue journal")
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._sweeper = asyncio.create_task(self._sweep_loop())
        for _ in range(self.worker_count):
            self._spawn_worker()
        self.log(f"serve: listening on http://{self.host}:{self.port} "
                 f"({self.worker_count} worker(s))")

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def _spawn_worker(self) -> None:
        spool = self.queue.workdir_root or "."
        cmd = [sys.executable, "-m", "repro", "worker",
               "--url", self.url, "--spool", spool, *self.worker_args]
        self._workers.append(subprocess.Popen(cmd))

    async def _sweep_loop(self) -> None:
        """Expire leases, compact the journal, resurrect dead workers."""
        while not self._stop.is_set():
            try:
                for job in self.queue.expire_leases():
                    self.log(f"serve: lease on job {job.job_id} expired; "
                             f"job is now {job.state} "
                             f"(attempt {job.attempts}/{job.max_attempts})")
                dropped = self.queue.compact_if_needed()
                if dropped:
                    self.log(f"serve: compacted queue journal "
                             f"(-{dropped} superseded records)")
                if not self.draining:
                    for i, proc in enumerate(self._workers):
                        code = proc.poll()
                        if code is not None:
                            self.log(f"serve: worker pid {proc.pid} exited "
                                     f"with code {code}; restarting")
                            self._worker_restarts += 1
                            spool = self.queue.workdir_root or "."
                            cmd = [sys.executable, "-m", "repro", "worker",
                                   "--url", self.url, "--spool", spool,
                                   *self.worker_args]
                            self._workers[i] = subprocess.Popen(cmd)
            except Exception as exc:  # the sweeper must never die
                self.log(f"serve: sweeper error: "
                         f"{type(exc).__name__}: {exc}")
            try:
                await asyncio.wait_for(self._stop.wait(),
                                       self.sweep_interval)
            except asyncio.TimeoutError:
                pass

    def begin_drain(self) -> None:
        """Stop granting claims; :meth:`run_until_stopped` exits once
        nothing is leased."""
        if not self.draining:
            self.draining = True
            self.log("serve: draining (no new claims; waiting for leased "
                     "jobs to finish)")

    async def run_until_stopped(self) -> None:
        """Serve until SIGTERM/SIGINT starts a drain and the last leased
        job finishes."""
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, self.begin_drain)
            except NotImplementedError:
                pass
        while True:
            if self.draining:
                if self.queue.stats()["by_state"]["leased"] == 0:
                    break
            await asyncio.sleep(0.2)
        await self.stop()

    async def stop(self) -> None:
        """Tear everything down (idempotent)."""
        self._stop.set()
        if self._sweeper is not None:
            await asyncio.wait({self._sweeper})
            self._sweeper = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for proc in self._workers:
            if proc.poll() is None:
                proc.terminate()
        for proc in self._workers:
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
        self._workers = []
        self.queue.close()
        self.log("serve: stopped")

    # -- HTTP plumbing ---------------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            status, headers, payload = await self._respond(reader)
        except Exception as exc:
            status, headers, payload = 500, {}, json.dumps(
                {"error": f"{type(exc).__name__}: {exc}"}).encode()
        try:
            reason = _REASONS.get(status, "Unknown")
            head = [f"HTTP/1.1 {status} {reason}",
                    f"Content-Length: {len(payload)}",
                    "Content-Type: "
                    + headers.pop("Content-Type", "application/json"),
                    "Connection: close"]
            head.extend(f"{k}: {v}" for k, v in headers.items())
            writer.write(("\r\n".join(head) + "\r\n\r\n").encode()
                         + payload)
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    async def _respond(self, reader) -> tuple[int, dict, bytes]:
        try:
            request_line = await asyncio.wait_for(reader.readline(), 30)
        except asyncio.TimeoutError:
            return 400, {}, b'{"error": "request timeout"}'
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            return 400, {}, b'{"error": "bad request line"}'
        method, target = parts[0], parts[1]
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        body: Optional[dict] = None
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY:
            return 413, {}, b'{"error": "body too large"}'
        if length:
            raw = await reader.readexactly(length)
            try:
                body = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                return 400, {}, b'{"error": "body is not valid JSON"}'
        path, _, query = target.partition("?")
        try:
            result = self._route(method, path, query, body)
        except _HttpError as exc:
            return (exc.status, exc.headers,
                    json.dumps({"error": exc.message}).encode())
        if result is None:
            return 204, {}, b""
        status, doc = result
        if isinstance(doc, bytes):
            return status, {"Content-Type":
                            "application/openmetrics-text; version=1.0.0; "
                            "charset=utf-8"}, doc
        return status, {}, json.dumps(doc, sort_keys=True).encode()

    # -- routing ---------------------------------------------------------------
    def _route(self, method: str, path: str, query: str,
               body: Optional[dict]) -> Optional[tuple[int, Any]]:
        body = body or {}
        if path == "/healthz" and method == "GET":
            return 200, {"status": "ok",
                         "uptime_seconds": round(
                             time.time() - self.started_at, 3)}
        if path == "/readyz" and method == "GET":
            if self.draining:
                raise _HttpError(503, "draining")
            return 200, {"status": "ready"}
        if path == "/metrics" and method == "GET":
            return 200, self._metrics()
        if path == "/stats" and method == "GET":
            stats = self.queue.stats()
            stats["draining"] = self.draining
            stats["worker_restarts"] = self._worker_restarts
            stats["workers"] = sum(1 for p in self._workers
                                   if p.poll() is None)
            return 200, stats
        if path == "/drain" and method == "POST":
            self.begin_drain()
            return 202, {"status": "draining"}
        if path == "/jobs" and method == "POST":
            return self._submit(body)
        if path == "/jobs" and method == "GET":
            state = None
            for pair in query.split("&"):
                k, _, v = pair.partition("=")
                if k == "state":
                    state = v
            if state is not None and state not in JOB_STATES:
                raise _HttpError(400, f"unknown state {state!r}")
            return 200, {"jobs": [j.to_dict()
                                  for j in self.queue.jobs(state)]}
        if path.startswith("/jobs/"):
            return self._job_route(method, path)
        if path.startswith("/lease/") and method == "POST":
            return self._lease_route(path, body)
        raise _HttpError(404, f"no route for {method} {path}")

    def _submit(self, body: dict) -> tuple[int, Any]:
        if self.draining:
            raise _HttpError(503, "draining; not accepting submissions")
        try:
            job, created = self.queue.submit(
                kind=body.get("kind", ""),
                params=body.get("params"),
                key=body.get("key"),
                max_attempts=body.get("max_attempts"))
        except JobValidationError as exc:
            raise _HttpError(400, str(exc))
        except QueueFullError as exc:
            raise _HttpError(429, str(exc),
                             {"Retry-After": str(RETRY_AFTER_SECONDS)})
        return (201 if created else 200), job.to_dict()

    def _job_route(self, method: str, path: str) -> tuple[int, Any]:
        parts = path.split("/")  # ['', 'jobs', '<id>', maybe more]
        job_id = parts[2] if len(parts) > 2 else ""
        tail = parts[3] if len(parts) > 3 else ""
        try:
            job = self.queue.get(job_id)
        except UnknownJobError:
            raise _HttpError(404, f"no job {job_id!r}")
        if not tail and method == "GET":
            return 200, job.to_dict()
        if tail == "cancel" and method == "POST":
            return 200, self.queue.cancel(job_id).to_dict()
        if tail == "status" and method == "GET":
            return 200, self._job_status(job)
        raise _HttpError(404, f"no route for {method} {path}")

    def _job_status(self, job) -> dict:
        """The job document plus live progress from its artifacts."""
        doc = job.to_dict()
        doc["progress"] = None
        journal_name = JOURNAL_NAMES.get(job.kind)
        if job.workdir and journal_name:
            journal = os.path.join(job.workdir, journal_name)
            events = os.path.join(job.workdir, "events.jsonl")
            if os.path.exists(journal):
                try:
                    doc["progress"] = watch_once(
                        journal,
                        events if os.path.exists(events) else None)
                except (OSError, ValueError) as exc:
                    doc["progress_error"] = str(exc)
        return doc

    def _metrics(self) -> bytes:
        """OpenMetrics: the tracer's counters plus queue gauges
        refreshed at scrape time."""
        tracer = get_tracer()
        stats = self.queue.stats()
        for state, n in stats["by_state"].items():
            tracer.gauge(f"service.jobs.{state}", n)
        tracer.gauge("service.queue.capacity", stats["capacity"])
        tracer.gauge("service.queue.active", stats["active"])
        tracer.gauge("service.workers.alive",
                     sum(1 for p in self._workers if p.poll() is None))
        tracer.gauge("service.workers.restarts", self._worker_restarts)
        tracer.gauge("service.draining", int(self.draining))
        return render_openmetrics(tracer).encode("utf-8")

    def _lease_route(self, path: str, body: dict) -> Optional[tuple[int,
                                                                    Any]]:
        op = path[len("/lease/"):]
        if op == "claim":
            if self.draining:
                return None  # 204: drain looks like an idle queue
            job = self.queue.claim(str(body.get("worker", "anonymous")))
            if job is None:
                return None
            return 200, job.to_dict()
        job_id = str(body.get("job_id", ""))
        token = str(body.get("token", ""))
        try:
            if op == "renew":
                return 200, {"deadline": self.queue.renew(job_id, token)}
            if op == "complete":
                return 200, {"won": self.queue.complete(
                    job_id, token, body.get("result"))}
            if op == "fail":
                return 200, {"won": self.queue.fail(
                    job_id, token, str(body.get("error", "unknown")))}
        except UnknownJobError:
            raise _HttpError(404, f"no job {job_id!r}")
        except LeaseError as exc:
            raise _HttpError(409, str(exc))
        raise _HttpError(404, f"no lease operation {op!r}")


async def serve(spool: str, host: str = "127.0.0.1", port: int = 0,
                capacity: int = 64, lease_ttl: float = 30.0,
                workers: int = 2, sweep_interval: float = 1.0,
                worker_args: Optional[list] = None,
                queue_kwargs: Optional[dict] = None,
                port_file: Optional[str] = None) -> int:
    """Run a service instance until drained (the ``repro serve`` body).

    ``spool`` is the service home: the queue journal lives at
    ``<spool>/queue.jsonl`` and each job's workdir at
    ``<spool>/<job_id>``.  ``port_file`` (written once bound) is how a
    parent that asked for ``port=0`` learns the real port."""
    from ..runtime import atomic_write_text

    os.makedirs(spool, exist_ok=True)
    queue = JobQueue(os.path.join(spool, "queue.jsonl"),
                     capacity=capacity, lease_ttl=lease_ttl,
                     workdir_root=spool, **(queue_kwargs or {}))
    server = VerificationServer(queue, host=host, port=port,
                                sweep_interval=sweep_interval,
                                workers=workers, worker_args=worker_args)
    await server.start()
    if port_file:
        atomic_write_text(port_file, f"{server.port}\n")
    await server.run_until_stopped()
    return 0
