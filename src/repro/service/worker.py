"""The lease-holding worker: claims jobs, runs them, heartbeats, dies.

Workers are *crash-only*: every abnormal condition ends in ``os._exit``
and the supervisor (or systemd, or the chaos harness) starts a fresh
process.  There is no in-worker recovery path to get wrong, and a
worker that was SIGKILLed outright is indistinguishable from one that
exited deliberately — both leave a lease that stops renewing, which is
the one failover mechanism the whole fleet relies on:

* the job **hangs** → no telemetry events → the progress watchdog
  fires ``os._exit(142)`` → the lease expires → the job is re-leased;
* the worker is **SIGKILLed** → heartbeats stop mid-run → the lease
  expires → the job is re-leased;
* the **lease is lost** (cancelled job, or re-granted after a stall
  the watchdog missed) → the heartbeat's renew comes back 409 →
  ``os._exit(143)`` rather than keep computing a result nobody wants.

The job itself runs in the worker's main thread; the heartbeat thread
is a daemon so it can never keep a finished worker alive.  A server
outage is *not* fatal: heartbeats tolerate unreachability (the client
already retries connections) and keep working — if the outage outlives
the lease, the late result loses to the re-run's and is counted as a
duplicate, which is the documented degraded-but-correct outcome.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from typing import Optional

from .chaos import HANG_EXIT
from .client import (
    LeaseLostError,
    ServiceClient,
    ServiceUnavailableError,
)
from .runner import run_job

__all__ = ["Worker", "ProgressSink", "LEASE_LOST_EXIT"]

#: exit code when a renew says the lease is gone.
LEASE_LOST_EXIT = 143


class ProgressSink:
    """A telemetry sink that only remembers when the job last did
    anything — the signal the watchdog and the heartbeat key off."""

    def __init__(self) -> None:
        self.events = 0
        self.last_activity = time.monotonic()

    def write(self, event: dict) -> None:
        self.events += 1
        self.last_activity = time.monotonic()

    def close(self) -> None:
        pass


class _Heartbeat(threading.Thread):
    """Renews one job's lease while the job makes progress; pulls the
    plug on the whole process when it stops."""

    def __init__(self, client: ServiceClient, job_id: str, token: str,
                 deadline: float, progress: ProgressSink,
                 stall_timeout: float) -> None:
        super().__init__(name=f"heartbeat-{job_id}", daemon=True)
        self.client = client
        self.job_id = job_id
        self.token = token
        self.deadline = deadline
        self.progress = progress
        self.stall_timeout = stall_timeout
        self.done = threading.Event()

    def _interval(self) -> float:
        # Renew at a third of the remaining lease so two heartbeats can
        # be lost to an outage before the lease is at risk.
        return max(0.1, (self.deadline - time.time()) / 3.0)

    def run(self) -> None:
        while not self.done.wait(self._interval()):
            stalled = time.monotonic() - self.progress.last_activity
            if stalled > self.stall_timeout:
                # The job stopped emitting events: hung, not slow.
                # Dying releases nothing locally but lets the lease
                # expire, which is what re-runs the job elsewhere.
                os._exit(HANG_EXIT)
            try:
                self.deadline = self.client.renew(self.job_id, self.token)
            except LeaseLostError:
                if self.done.is_set():
                    return  # raced against normal completion
                os._exit(LEASE_LOST_EXIT)
            except ServiceUnavailableError:
                # Server restarting; keep working.  The client already
                # burned its connection retries, so just try again on
                # the next beat.
                continue


class Worker:
    """One claim-execute-report loop against a service endpoint."""

    def __init__(self, base_url: str, spool: str,
                 worker_id: Optional[str] = None,
                 poll_interval: float = 0.5,
                 stall_timeout: float = 30.0) -> None:
        self.client = ServiceClient(base_url)
        self.spool = spool
        self.worker_id = worker_id or (
            f"{socket.gethostname()}-{os.getpid()}")
        self.poll_interval = poll_interval
        self.stall_timeout = stall_timeout
        self.jobs_run = 0
        self._stop = threading.Event()

    def stop(self) -> None:
        """Finish the current job, then exit the loop (SIGTERM drain)."""
        self._stop.set()

    def run_one(self) -> bool:
        """Claim and fully process one job; ``False`` when the queue had
        nothing for us."""
        job = self.client.claim(self.worker_id)
        if job is None:
            return False
        job_id = job["job_id"]
        token = job["lease"]["token"]
        workdir = job["workdir"] or os.path.join(self.spool, job_id)
        progress = ProgressSink()
        heartbeat = _Heartbeat(self.client, job_id, token,
                               job["lease"]["deadline"], progress,
                               self.stall_timeout)
        heartbeat.start()
        try:
            summary = run_job(job["kind"], job["params"], workdir,
                              attempt=int(job.get("attempts", 1)),
                              progress_sink=progress)
        except Exception as exc:
            heartbeat.done.set()
            heartbeat.join(timeout=5.0)
            error = f"{type(exc).__name__}: {exc}".splitlines()[0]
            try:
                self.client.fail(job_id, token, error)
            except (LeaseLostError, ServiceUnavailableError):
                pass  # the lease's expiry will requeue it anyway
        else:
            # Stop heartbeating *before* reporting: a renew in flight
            # after the job went terminal would read as a lost lease.
            heartbeat.done.set()
            heartbeat.join(timeout=5.0)
            try:
                self.client.complete(job_id, token, summary)
            except LeaseLostError:
                # Re-leased while we raced to the finish line; the
                # other attempt's durable result wins, ours is the
                # counted duplicate.
                pass
        self.jobs_run += 1
        return True

    def run_forever(self) -> int:
        """Claim jobs until :meth:`stop` (or a drained server tells an
        idle worker nothing more is coming)."""
        while not self._stop.is_set():
            try:
                if not self.run_one():
                    self._stop.wait(self.poll_interval)
            except ServiceUnavailableError:
                # Server gone; poll until it returns.  Orphaned leases
                # are its problem, staying alive to serve the restarted
                # server is ours.
                self._stop.wait(self.poll_interval)
        return 0
