"""The always-on verification service.

Turns the repo's crash-safe batch runtime into a long-lived service:
clients submit verification jobs (mutation campaigns, bounded
explorations, invariant checks, family pipelines) over HTTP to a
durable journal-backed queue (:mod:`~repro.service.queue`); a fleet of
lease-holding workers (:mod:`~repro.service.worker`) claims, executes
(:mod:`~repro.service.runner`), and heartbeats; every failure mode —
worker SIGKILL, worker hang, server SIGKILL, transient sqlite errors,
a full spool disk — lands in a documented degraded-but-correct outcome
chaos-tested by :mod:`~repro.service.harness` (``repro chaos``).

The load-bearing idea: **failover is resume**.  Jobs checkpoint through
the same :class:`~repro.runtime.journal.CheckpointJournal` machinery as
``repro mutate --journal``, so a re-leased job continues from the dead
worker's last durable unit and its recovered detection matrix is
byte-identical to an uninterrupted run's.  See ``docs/SERVICE.md``.
"""

from .chaos import ChaosError, chaos_active, parse_chaos
from .client import (
    BackpressureError,
    LeaseLostError,
    ServiceClient,
    ServiceError,
    ServiceUnavailableError,
)
from .harness import SCENARIOS, ScenarioResult, run_scenarios
from .jobs import (
    JOB_KINDS,
    JOB_STATES,
    TERMINAL_STATES,
    Job,
    JobValidationError,
    Lease,
    validate_params,
)
from .queue import (
    QUEUE_JOURNAL_KIND,
    JobQueue,
    LeaseError,
    QueueFullError,
    UnknownJobError,
)
from .runner import run_job
from .server import VerificationServer, serve
from .worker import Worker

__all__ = [
    "JOB_KINDS", "JOB_STATES", "TERMINAL_STATES",
    "Job", "Lease", "JobValidationError", "validate_params",
    "JobQueue", "QueueFullError", "LeaseError", "UnknownJobError",
    "QUEUE_JOURNAL_KIND",
    "ServiceClient", "ServiceError", "BackpressureError",
    "LeaseLostError", "ServiceUnavailableError",
    "VerificationServer", "serve",
    "Worker", "run_job",
    "ChaosError", "chaos_active", "parse_chaos",
    "SCENARIOS", "ScenarioResult", "run_scenarios",
]
