"""The durable job queue: fsync'd journal-backed state, expiring leases.

The queue *is* its journal.  Every state transition re-records the full
job snapshot through a :class:`~repro.runtime.journal.CheckpointJournal`
(append-only, fsync'd, torn-tail-tolerant), so a server killed at any
instant restarts by replaying the journal: the latest durable record per
job id is exactly the state the dead server had made durable.  A job
whose transition was mid-append when the kill landed replays as its
previous state — the transition simply never happened, which is always
safe because every transition here is idempotent or re-derivable
(a lease that was being granted expires as an orphan; a completion that
was being recorded is re-reported by the worker, whose token is still
valid).

Leases make worker failover a queue-local decision: a claim grants a
bearer token with a deadline; heartbeats extend it; the sweeper
(:meth:`JobQueue.expire_leases`) requeues any job whose deadline passed
without renewal.  A worker that was SIGKILLed simply stops renewing; a
worker that hung stops making progress, its own watchdog kills it, and
the lease expires the same way.  When the original worker *does* come
back after its lease was re-granted, its token no longer matches: the
late result is discarded and counted (``duplicates``) — the first
durable result wins.

Journal growth is bounded by compaction: once the journal holds more
superseded records than ``compact_after``, it is atomically rewritten
down to live records (:meth:`CheckpointJournal.compact`).
"""

from __future__ import annotations

import os
import threading
import time
import uuid
from typing import Callable, Optional

from ..runtime import CheckpointJournal, load_journal
from ..telemetry import get_tracer
from .jobs import Job, Lease, validate_params

__all__ = [
    "QUEUE_JOURNAL_KIND",
    "JobQueue",
    "QueueFullError",
    "LeaseError",
    "UnknownJobError",
]

#: ``kind`` stamped into queue journal headers — what ``repro watch``
#: dispatches on.
QUEUE_JOURNAL_KIND = "service-queue"


class QueueFullError(RuntimeError):
    """The bounded queue refused a submission; the server translates
    this into 429 + Retry-After backpressure."""


class LeaseError(RuntimeError):
    """A lease operation with a stale token, an expired deadline, or on
    a job not currently leased."""


class UnknownJobError(KeyError):
    """No job with the requested id."""


class JobQueue:
    """Durable, bounded, lease-based job queue (thread-safe).

    ``capacity`` bounds *active* (non-terminal) jobs — terminal history
    does not consume submission headroom.  ``lease_ttl`` is the seconds
    a claim or heartbeat buys; ``clock`` is injectable for the lease
    edge-case tests.  All mutating methods journal the new job snapshot
    before returning, so anything this class said "yes" to is durable.
    """

    def __init__(
        self,
        path: str,
        capacity: int = 64,
        lease_ttl: float = 30.0,
        max_attempts: int = 3,
        clock: Callable[[], float] = time.time,
        compact_after: int = 512,
        workdir_root: Optional[str] = None,
    ) -> None:
        self.path = path
        self.capacity = capacity
        self.lease_ttl = lease_ttl
        self.max_attempts = max_attempts
        self.clock = clock
        self.compact_after = compact_after
        self.workdir_root = workdir_root
        self._lock = threading.RLock()
        self._jobs: dict[str, Job] = {}
        self._by_key: dict[str, str] = {}
        self._appends_since_compact = 0
        self.replayed = 0
        if os.path.exists(path) and os.path.getsize(path) > 0:
            _, units = load_journal(path)
            for job_id, data in units.items():
                job = Job.from_dict(data)
                self._jobs[job.job_id] = job
                if job.key:
                    self._by_key[job.key] = job.job_id
            self.replayed = len(self._jobs)
        self._journal = CheckpointJournal.open(
            path, {"kind": QUEUE_JOURNAL_KIND})

    # -- internal -------------------------------------------------------------
    def _record(self, job: Job) -> None:
        job.updated_at = self.clock()
        self._journal.record(job.job_id, job.to_dict())
        self._appends_since_compact += 1

    def _active_count(self) -> int:
        return sum(1 for j in self._jobs.values() if not j.terminal)

    def _queued_jobs(self) -> list[Job]:
        return sorted(
            (j for j in self._jobs.values() if j.state == "queued"),
            key=lambda j: (j.submitted_at, j.job_id))

    # -- client operations ----------------------------------------------------
    def submit(self, kind: str, params: Optional[dict] = None,
               key: Optional[str] = None,
               max_attempts: Optional[int] = None,
               workdir: Optional[str] = None) -> tuple[Job, bool]:
        """Queue a job; returns ``(job, created)``.

        With an idempotency ``key`` already on file the existing job is
        returned unchanged (``created=False``) — a client retrying a
        submission whose response it lost cannot double-queue work.
        Raises :class:`QueueFullError` when ``capacity`` active jobs
        already exist and :class:`~repro.service.jobs.JobValidationError`
        on a bad kind/params."""
        params = validate_params(kind, params)
        with self._lock:
            if key is not None and key in self._by_key:
                return self._jobs[self._by_key[key]], False
            if self._active_count() >= self.capacity:
                get_tracer().incr("service.queue.rejected")
                raise QueueFullError(
                    f"queue is full ({self.capacity} active jobs)")
            job_id = uuid.uuid4().hex[:12]
            if workdir is None and self.workdir_root is not None:
                workdir = os.path.join(self.workdir_root, job_id)
            job = Job(
                job_id=job_id,
                kind=kind,
                params=params,
                key=key,
                max_attempts=(max_attempts if max_attempts is not None
                              else self.max_attempts),
                workdir=workdir,
                submitted_at=self.clock(),
            )
            self._jobs[job.job_id] = job
            if key is not None:
                self._by_key[key] = job.job_id
            self._record(job)
            get_tracer().incr("service.queue.submitted")
            return job, True

    def get(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise UnknownJobError(job_id)
            return job

    def jobs(self, state: Optional[str] = None) -> list[Job]:
        """All jobs, newest submission first, optionally state-filtered."""
        with self._lock:
            out = [j for j in self._jobs.values()
                   if state is None or j.state == state]
        return sorted(out, key=lambda j: (-j.submitted_at, j.job_id))

    def cancel(self, job_id: str) -> Job:
        """Cancel a queued or leased job (idempotent on terminal jobs).

        A leased job is cancelled immediately: the worker's next
        heartbeat fails with :class:`LeaseError` and it abandons the
        attempt."""
        with self._lock:
            job = self.get(job_id)
            if job.terminal:
                return job
            job.state = "cancelled"
            job.lease = None
            self._record(job)
            get_tracer().incr("service.queue.cancelled")
            return job

    # -- worker operations ----------------------------------------------------
    def claim(self, worker: str) -> Optional[Job]:
        """Lease the oldest queued job to ``worker``; ``None`` when the
        queue has nothing runnable."""
        with self._lock:
            queued = self._queued_jobs()
            if not queued:
                return None
            job = queued[0]
            now = self.clock()
            job.state = "leased"
            job.attempts += 1
            job.lease = Lease(worker=worker, token=uuid.uuid4().hex,
                              deadline=now + self.lease_ttl,
                              granted_at=now)
            self._record(job)
            get_tracer().incr("service.queue.claimed")
            return job

    def _leased_with_token(self, job_id: str, token: str) -> Job:
        job = self.get(job_id)
        if job.state != "leased" or job.lease is None:
            raise LeaseError(
                f"job {job_id} is {job.state}, not leased")
        if job.lease.token != token:
            raise LeaseError(
                f"stale lease token for job {job_id}: the lease was "
                f"re-granted (holder is now {job.lease.worker!r})")
        return job

    def renew(self, job_id: str, token: str) -> float:
        """Heartbeat: extend the lease, returning the new deadline.

        The deadline is *inclusive*: a heartbeat arriving exactly at the
        deadline still renews.  One arriving after it fails with
        :class:`LeaseError` even if the sweeper has not run yet — the
        grant is gone the instant the clock passes the deadline, not
        when someone notices."""
        with self._lock:
            job = self._leased_with_token(job_id, token)
            now = self.clock()
            overdue = now - job.lease.deadline
            if overdue > 0:
                self._expire(job, now)
                raise LeaseError(
                    f"lease on job {job_id} expired {overdue:.3f}s "
                    f"before the heartbeat")
            job.lease.deadline = now + self.lease_ttl
            self._record(job)
            return job.lease.deadline

    def complete(self, job_id: str, token: str,
                 result: Optional[dict] = None) -> bool:
        """Report a finished job.  Returns ``True`` when this result
        won; ``False`` when the lease was re-granted or the job already
        finished — the late result is discarded and counted, because the
        first *durable* result is the one every reader may already have
        seen."""
        with self._lock:
            job = self.get(job_id)
            try:
                job = self._leased_with_token(job_id, token)
            except LeaseError:
                job.duplicates += 1
                self._record(job)
                get_tracer().incr("service.queue.duplicate_results")
                return False
            job.state = "done"
            job.lease = None
            job.result = result
            # job.error is deliberately kept: a job that failed an
            # attempt before succeeding carries that diagnostic as
            # history (the state says "done"; the error says what the
            # road there looked like).
            self._record(job)
            get_tracer().incr("service.queue.completed")
            return True

    def fail(self, job_id: str, token: str, error: str) -> bool:
        """Report a failed attempt.  The job requeues until its
        ``max_attempts`` are spent, then lands in ``failed``.  Returns
        ``False`` (discarded, counted) on a stale token, like
        :meth:`complete`."""
        with self._lock:
            job = self.get(job_id)
            try:
                job = self._leased_with_token(job_id, token)
            except LeaseError:
                job.duplicates += 1
                self._record(job)
                get_tracer().incr("service.queue.duplicate_results")
                return False
            job.lease = None
            job.error = error
            if job.attempts >= job.max_attempts:
                job.state = "failed"
                get_tracer().incr("service.queue.failed")
            else:
                job.state = "queued"
                get_tracer().incr("service.queue.requeued")
            self._record(job)
            return True

    # -- maintenance ----------------------------------------------------------
    def _expire(self, job: Job, now: float) -> None:
        """Reclaim one overdue lease (caller holds the lock)."""
        job.lease = None
        job.expiries += 1
        if job.attempts >= job.max_attempts:
            job.state = "failed"
            job.error = (f"lease expired after attempt {job.attempts}/"
                         f"{job.max_attempts} (worker died or hung)")
            get_tracer().incr("service.queue.failed")
        else:
            job.state = "queued"
            get_tracer().incr("service.queue.requeued")
        self._record(job)
        get_tracer().incr("service.queue.lease_expired")

    def expire_leases(self, now: Optional[float] = None) -> list[Job]:
        """The sweeper: requeue (or fail out) every job whose lease
        deadline has passed.  Run periodically by the server and once at
        startup, which is what reclaims orphan leases after a server or
        worker death."""
        expired = []
        with self._lock:
            now = self.clock() if now is None else now
            for job in self._jobs.values():
                if job.state == "leased" and job.lease is not None \
                        and now > job.lease.deadline:
                    self._expire(job, now)
                    expired.append(job)
        return expired

    def stats(self) -> dict:
        """Queue-level counts for ``/metrics`` and ``repro jobs``."""
        with self._lock:
            by_state = {state: 0 for state in
                        ("queued", "leased", "done", "failed", "cancelled")}
            duplicates = expiries = 0
            for job in self._jobs.values():
                by_state[job.state] = by_state.get(job.state, 0) + 1
                duplicates += job.duplicates
                expiries += job.expiries
            return {
                "jobs": len(self._jobs),
                "active": self._active_count(),
                "capacity": self.capacity,
                "by_state": by_state,
                "duplicates": duplicates,
                "expiries": expiries,
            }

    def compact_if_needed(self) -> int:
        """Compact the journal once enough superseded records pile up;
        returns the number of records dropped (0 = not compacted)."""
        with self._lock:
            live = len(self._jobs)
            if self._appends_since_compact - live < self.compact_after:
                return 0
            dropped = self._journal.compact()
            self._appends_since_compact = live
            get_tracer().incr("service.queue.compactions")
            return dropped

    def close(self) -> None:
        self._journal.close()

    def __enter__(self) -> "JobQueue":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
