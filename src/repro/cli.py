"""Command-line interface: the paper's push-button flow.

    python -m repro stats                  # protocol statistics
    python -m repro check                  # invariants + determinism
    python -m repro deadlock --assignment v5
    python -m repro simulate --workload fig4 --assignment v5
    python -m repro simulate --workload random --ops 200 --coverage
    python -m repro mc --assignment v5     # model-checker baseline
    python -m repro map                    # section-5 hardware mapping
    python -m repro codegen M --verilog    # generated controller code
    python -m repro mutate --seed 0 --count 50   # fault-injection campaign
    python -m repro explore --nodes 2 --depth 12 # bounded reachability
    python -m repro watch campaign.journal       # live view of a run
    python -m repro family --variant moesi       # one member, full pipeline
    python -m repro family --all --matrix-out BENCH_family.json
    python -m repro serve --spool /var/repro     # verification service
    python -m repro submit campaign seed=0 count=50 --wait
    python -m repro jobs                         # queue state
    python -m repro chaos                        # failover scenario suite

Every subcommand (except ``watch``, which only observes) also accepts
the telemetry flags ``--profile`` (human text summary), ``--trace-out
events.jsonl`` (JSONL event stream, flushed per event unless
``--trace-buffered``), ``--report-out report.json`` (machine-readable
run report), ``--metrics-out metrics.prom`` (live OpenMetrics
snapshot), and ``--quiet`` (suppress the normal human output) — see
``docs/OBSERVABILITY.md`` — plus the database flags ``--db PATH``
(attach to an existing generated database file) and ``--save-db PATH``
(generate into a file for later ``--db`` runs).

Every system-building subcommand also accepts ``--variant KEY`` to work
on a protocol-family member other than the MESI baseline (MOESI, MESIF,
and the axis variants — see ``docs/PROTOCOL_FAMILY.md``); ``--db`` files
carry their member in a marker table, so attaching never needs the flag.
``family`` runs the whole differential pipeline (invariants, deadlock
arcs, simulation, bounded exploration, a seeded oracle campaign) for one
member or every member, and emits the cross-family benchmark matrix.

``mutate`` additionally runs through the crash-safe runtime:
``--journal`` checkpoints completed mutants, ``--resume`` restarts an
interrupted campaign after the last completed mutant, and
``--isolation process`` + ``--timeout`` reap hung workers — see
``docs/RESILIENCE.md``.

``serve`` runs the always-on verification service (durable job queue +
lease-based worker fleet); ``submit``/``jobs`` are its clients,
``worker`` is one fleet member (normally spawned by ``serve`` itself),
and ``chaos`` is the failover scenario suite — see ``docs/SERVICE.md``.
"""

from __future__ import annotations

import argparse
import contextlib
import io
import sys
from typing import Optional, Sequence

__all__ = ["main", "build_parser"]


def _telemetry_parent() -> argparse.ArgumentParser:
    """The telemetry flags shared by every subcommand."""
    common = argparse.ArgumentParser(add_help=False)
    g = common.add_argument_group("telemetry")
    g.add_argument("--profile", action="store_true",
                   help="print a telemetry summary (spans, SQL, counters)")
    g.add_argument("--trace-out", metavar="PATH", default=None,
                   help="stream every telemetry event to PATH as JSONL")
    g.add_argument("--trace-buffered", action="store_true",
                   help="buffer the --trace-out stream instead of flushing "
                        "per event (fewer syscalls; tail -f and repro watch "
                        "lose liveness)")
    g.add_argument("--report-out", metavar="PATH", default=None,
                   help="write the machine-readable JSON run report to PATH")
    g.add_argument("--metrics-out", metavar="PATH", default=None,
                   help="keep a Prometheus/OpenMetrics text-format snapshot "
                        "of the run's metrics current at PATH (atomically "
                        "rewritten; scrape or watch it live)")
    g.add_argument("--quiet", action="store_true",
                   help="suppress the command's normal output")
    d = common.add_argument_group("database")
    d.add_argument("--db", metavar="PATH", default=None,
                   help="attach to an existing generated protocol database "
                        "file instead of regenerating (error if missing)")
    d.add_argument("--save-db", metavar="PATH", default=None,
                   help="generate the protocol into a database file at PATH "
                        "(reusable later via --db)")
    from .protocols.family import SPECS
    d.add_argument("--variant", metavar="KEY", choices=tuple(SPECS),
                   default=None,
                   help="protocol-family member to generate "
                        f"({', '.join(SPECS)}; default: mesi). A --db file "
                        "names its own member in a marker table; giving a "
                        "conflicting --variant is an error")
    return common


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=("SQL-based early error detection for cache coherence "
                     "protocols (IPPS 2003 reproduction)"),
    )
    common = _telemetry_parent()
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("stats", parents=[common],
                   help="protocol statistics vs the paper's")

    p = sub.add_parser("check", parents=[common],
                       help="run all invariants and determinism checks")
    p.add_argument("--no-batch", action="store_true",
                   help="one query per invariant instead of batched sweeps")

    p = sub.add_parser("deadlock", parents=[common],
                       help="static deadlock analysis")
    p.add_argument("--assignment", choices=("v4", "v5", "v5d"), default="v5")
    p.add_argument("--closure", action="store_true",
                   help="transitive closure instead of one pairwise round")
    p.add_argument("--strict", action="store_true",
                   help="require message equality when composing")
    p.add_argument("--engine", choices=("sql", "python"), default="sql",
                   help="set-based SQL pipeline or the Python oracle")
    p.add_argument("--workers", type=int, default=None,
                   help="threads for parallel placement composition "
                        "(default: one per CPU, capped at the placements)")

    p = sub.add_parser("simulate", parents=[common],
                       help="run the table-driven simulator")
    p.add_argument("--workload", choices=("fig2", "fig4", "random"),
                   default="random")
    p.add_argument("--assignment", choices=("v4", "v5", "v5d"), default="v5d")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--ops", type=int, default=100)
    p.add_argument("--coverage", action="store_true",
                   help="report controller-table transition coverage")
    p.add_argument("--trace", action="store_true", help="print every message")
    p.add_argument("--guided", action="store_true",
                   help="coverage-guided workload: bias ops toward table "
                        "rows the persisted ledger has not seen "
                        "(overrides --workload)")
    p.add_argument("--epsilon", type=float, default=0.2, metavar="P",
                   help="exploration rate of the guided policy "
                        "(default 0.2)")
    p.add_argument("--frontier-dir", metavar="DIR", default=None,
                   help="with --guided: start from an explorer frontier "
                        "state sampled out of DIR's successor store "
                        "(fingerprint must match)")

    p = sub.add_parser("mc", parents=[common],
                       help="explicit-state model checker (baseline)")
    p.add_argument("--assignment", choices=("v4", "v5", "v5d"), default="v5")
    p.add_argument("--max-states", type=int, default=100_000)

    p = sub.add_parser("repair", parents=[common],
                       help="search for channel-assignment fixes")
    p.add_argument("--assignment", choices=("v4", "v5", "v5d"), default="v5")
    p.add_argument("--rounds", type=int, default=4)
    p.add_argument("--oracle-depth", type=int, default=0, metavar="N",
                   help="also re-verify the final fix by bounded "
                        "exploration to depth N (default: 0 = skip the "
                        "oracle; invariants and both deadlock engines "
                        "always re-verify every fix)")
    p.add_argument("--journal", metavar="PATH", default=None,
                   help="checkpoint each applied fix to a crash-safe "
                        "journal at PATH; re-running with the same PATH "
                        "resumes after the last durable fix")
    p.add_argument("--report", metavar="PATH", default=None,
                   help="write the closed-loop report (fixes, "
                        "re-verification verdicts, guided-vs-fixed "
                        "coverage deltas) to PATH, atomically")
    p.add_argument("--baseline", metavar="PATH", default=None,
                   help="compare the closed-loop report against a "
                        "committed baseline (e.g. BENCH_repair.json) and "
                        "exit 1 on any repair/coverage regression")

    sub.add_parser("map", parents=[common],
                   help="hardware mapping of D (section 5)")

    p = sub.add_parser("codegen", parents=[common],
                       help="generate controller code")
    p.add_argument("table", choices=("D", "M", "C", "N", "RAC", "IO",
                                     "NI", "PE"))
    p.add_argument("--verilog", action="store_true",
                   help="emit Verilog instead of Python")

    p = sub.add_parser("mutate", parents=[common],
                       help="protocol mutation / fault-injection campaign")
    p.add_argument("--seed", type=int, default=0,
                   help="RNG seed; the mutant stream is deterministic and "
                        "prefix-stable per seed (default: %(default)s)")
    p.add_argument("--count", type=int, default=50,
                   help="number of mutants to run (default: %(default)s)")
    p.add_argument("--classes", metavar="LIST", default=None,
                   help="comma-separated fault classes (default: all; see "
                        "docs/FAULT_INJECTION.md)")
    p.add_argument("--assignment", choices=("v4", "v5", "v5d"),
                   default="v5d",
                   help="channel assignment the campaign perturbs and "
                        "analyzes (default: %(default)s)")
    p.add_argument("--workers", type=int, default=None,
                   help="workers fanning mutants across snapshot clones "
                        "(default: 4; forced to 1 when telemetry is on "
                        "with thread isolation — process workers relay "
                        "their telemetry instead)")
    p.add_argument("--isolation", choices=("thread", "process"),
                   default="thread",
                   help="worker isolation: threads (default) or one child "
                        "process per mutant, which survives worker crashes "
                        "and enables --timeout (see docs/RESILIENCE.md)")
    p.add_argument("--timeout", type=float, metavar="SECONDS", default=None,
                   help="per-mutant wall-clock timeout; hung workers are "
                        "killed and reported as 'timeout' outcomes "
                        "(requires --isolation process)")
    p.add_argument("--journal", metavar="PATH", default=None,
                   help="append a crash-safe checkpoint journal at PATH "
                        "(one fsync'd JSONL record per completed mutant)")
    p.add_argument("--resume", metavar="PATH", default=None,
                   help="resume an interrupted campaign from its journal: "
                        "skip journaled mutants, run the rest, keep "
                        "appending to the same journal")
    p.add_argument("--matrix-out", metavar="PATH", default=None,
                   help="write the detection-matrix JSON report to PATH "
                        "(atomically: temp file + rename)")
    p.add_argument("--baseline", metavar="PATH", default=None,
                   help="compare against a committed detection matrix and "
                        "exit 1 on any detection regression")
    p.add_argument("--oracle", choices=("explore",), default=None,
                   help="ground-truth re-scoring of surviving mutants by "
                        "bounded exhaustive exploration; the matrix gains "
                        "an 'oracle' column (see docs/EXPLORATION.md)")
    p.add_argument("--oracle-depth", type=int, default=8, metavar="N",
                   help="exploration depth bound for --oracle "
                        "(default: %(default)s)")
    p.add_argument("--oracle-nodes", type=int, default=2, metavar="N",
                   help="node count for --oracle exploration "
                        "(default: %(default)s)")
    p.add_argument("--oracle-kernel", choices=("compiled", "interpreted"),
                   default="compiled",
                   help="transition backend for --oracle exploration: "
                        "codegen dispatch kernels or the interpreted "
                        "parity oracle (default: %(default)s)")
    p.add_argument("--repair", action="store_true",
                   help="close the loop: propose and re-verify channel-"
                        "assignment fixes for every deadlock-caught "
                        "mutant (see docs/REPAIR.md)")
    p.add_argument("--repair-rounds", type=int, default=4, metavar="N",
                   help="max analyze-modify rounds per repaired mutant "
                        "(default: %(default)s)")
    p.add_argument("--repair-oracle-depth", type=int, default=0,
                   metavar="N",
                   help="bounded-exploration depth for re-verifying each "
                        "mutant's final fix (default: 0 = engines + "
                        "invariants only)")

    p = sub.add_parser("explore", parents=[common],
                       help="bounded-depth exhaustive reachability "
                            "exploration of the generated tables")
    p.add_argument("--nodes", type=int, default=2,
                   help="caching nodes in the explored configuration "
                        "(default: %(default)s)")
    p.add_argument("--depth", type=int, default=10,
                   help="BFS depth bound in moves (default: %(default)s)")
    p.add_argument("--lines", type=int, default=1,
                   help="memory lines (addresses) in play "
                        "(default: %(default)s)")
    p.add_argument("--assignment", choices=("v4", "v5", "v5d"),
                   default="v5d",
                   help="channel assignment to explore under "
                        "(default: %(default)s)")
    p.add_argument("--workers", type=int, default=1,
                   help="parallel frontier expanders (kernel worker "
                        "processes under --kernel compiled, threads under "
                        "interpreted); results are identical for any "
                        "worker count (default: %(default)s)")
    p.add_argument("--capacity", type=int, default=1,
                   help="per-channel queue capacity (default: %(default)s)")
    p.add_argument("--kernel", choices=("compiled", "interpreted"),
                   default="compiled",
                   help="transition backend: integer-indexed codegen "
                        "dispatch kernels, or the SQL-interpreted tables "
                        "kept as the parity oracle (default: %(default)s)")
    p.add_argument("--frontier-dir", metavar="DIR", default=None,
                   help="disk-back the frontier and memoize the successor "
                        "relation in DIR/frontier.sqlite; re-runs over an "
                        "unchanged system expand whole BFS levels with "
                        "set-based joins instead of the simulator")
    p.add_argument("--quads", type=int, default=None, metavar="N",
                   help="number of quads hosting the nodes (default: "
                        "topology-derived; >2 enables quad-interchange "
                        "reduction under --symmetry full)")
    p.add_argument("--no-symmetry", action="store_true",
                   help="disable canonicalization under node permutation "
                        "symmetry (explores the full concrete space)")
    p.add_argument("--symmetry", choices=("off", "quad", "full"),
                   default=None,
                   help="symmetry reduction mode: 'quad' canonicalizes "
                        "node permutations within each quad, 'full' also "
                        "permutes interchangeable quads (default: quad)")
    p.add_argument("--journal", metavar="PATH", default=None,
                   help="checkpoint each completed depth to a crash-safe "
                        "JSONL journal at PATH")
    p.add_argument("--resume", metavar="PATH", default=None,
                   help="resume an interrupted exploration from its "
                        "journal, re-expanding from the last completed "
                        "depth")
    p.add_argument("--out", metavar="PATH", default=None,
                   help="write the exploration result JSON to PATH "
                        "(atomically: temp file + rename)")

    p = sub.add_parser("family", parents=[common],
                       help="cross-family differential pipeline: generate "
                            "one or all members, run invariants, deadlock "
                            "arcs, simulation, bounded exploration, and a "
                            "seeded oracle campaign per member")
    p.add_argument("--all", action="store_true",
                   help="run every registered family member instead of the "
                        "one named by --variant")
    p.add_argument("--nodes", type=int, default=2, metavar="N",
                   help="caching nodes for the simulation/exploration "
                        "topology (default: %(default)s)")
    p.add_argument("--assignment", choices=("v4", "v5", "v5d"),
                   default="v5d",
                   help="channel assignment for the dynamic stages "
                        "(default: %(default)s; the deadlock stage always "
                        "sweeps all three)")
    p.add_argument("--seed", type=int, default=0,
                   help="campaign RNG seed (default: %(default)s)")
    p.add_argument("--count", type=int, default=12, metavar="N",
                   help="mutants per member in the campaign stage "
                        "(default: %(default)s)")
    p.add_argument("--explore-depth", type=int, default=6, metavar="N",
                   help="BFS depth bound of the clean-system exploration "
                        "stage (default: %(default)s)")
    p.add_argument("--oracle-depth", type=int, default=5, metavar="N",
                   help="exploration depth bound for the campaign's "
                        "ground-truth oracle (default: %(default)s)")
    p.add_argument("--skip-campaign", action="store_true",
                   help="stop after the clean-system stages (no mutation "
                        "campaign, no oracle; much faster)")
    p.add_argument("--matrix-out", metavar="PATH", default=None,
                   help="write the cross-family benchmark JSON "
                        "(BENCH_family.json format) to PATH atomically")
    p.add_argument("--baseline", metavar="PATH", default=None,
                   help="compare each member's campaign against a committed "
                        "cross-family benchmark and exit 1 on any "
                        "detection regression")

    # ``watch`` is read-only and attaches to *another* process's run; it
    # takes neither the telemetry flags nor a protocol database.
    p = sub.add_parser("watch",
                       help="live view of a journaled campaign or "
                            "exploration running in another process")
    p.add_argument("journal", metavar="JOURNAL",
                   help="the run's checkpoint journal (--journal PATH on "
                        "mutate/explore)")
    p.add_argument("--events", metavar="PATH", default=None,
                   help="the run's --trace-out event stream; adds "
                        "declared totals, in-flight units, and worker "
                        "attribution to the view")
    p.add_argument("--interval", type=float, default=2.0, metavar="SECONDS",
                   help="seconds between refreshes (default: %(default)s)")
    p.add_argument("--once", action="store_true",
                   help="render one snapshot and exit (exit 2 if the "
                        "journal is unreadable) — the CI mode")
    p.add_argument("--json", action="store_true", dest="as_json",
                   help="emit the snapshot as one JSON object per refresh "
                        "instead of the human block")

    # The verification service (docs/SERVICE.md).  These subcommands
    # run or talk to the service rather than performing one run, so
    # like ``watch`` they take neither the telemetry flags nor a
    # protocol database.
    p = sub.add_parser("serve",
                       help="run the always-on verification service: "
                            "durable job queue + lease-based worker fleet")
    p.add_argument("--spool", metavar="DIR", required=True,
                   help="service home: queue journal, per-job workdirs")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8642,
                   help="listen port; 0 picks a free one "
                        "(default: %(default)s)")
    p.add_argument("--workers", type=int, default=2, metavar="N",
                   help="worker processes to spawn and supervise; 0 means "
                        "an external fleet attaches via 'repro worker' "
                        "(default: %(default)s)")
    p.add_argument("--capacity", type=int, default=64, metavar="N",
                   help="max active (queued+leased) jobs before 429 "
                        "backpressure (default: %(default)s)")
    p.add_argument("--lease-ttl", type=float, default=30.0,
                   metavar="SECONDS",
                   help="seconds a claim or heartbeat holds a lease "
                        "(default: %(default)s)")
    p.add_argument("--stall-timeout", type=float, default=30.0,
                   metavar="SECONDS",
                   help="seconds without job progress before a supervised "
                        "worker kills itself (default: %(default)s)")
    p.add_argument("--poll", type=float, default=0.5, metavar="SECONDS",
                   help="supervised workers' idle claim-poll interval "
                        "(default: %(default)s)")
    p.add_argument("--sweep-interval", type=float, default=1.0,
                   metavar="SECONDS",
                   help="lease-expiry / compaction / supervision sweep "
                        "period (default: %(default)s)")
    p.add_argument("--port-file", metavar="PATH", default=None,
                   help="write the bound port to PATH once listening "
                        "(for parents that passed --port 0)")

    p = sub.add_parser("worker",
                       help="one verification worker: claim jobs from a "
                            "service, run them, heartbeat the lease")
    p.add_argument("--url", required=True, metavar="URL",
                   help="service endpoint, e.g. http://127.0.0.1:8642")
    p.add_argument("--spool", metavar="DIR", required=True,
                   help="the service's spool (job workdirs live here)")
    p.add_argument("--id", dest="worker_id", default=None,
                   help="worker name in leases (default: host-pid)")
    p.add_argument("--stall-timeout", type=float, default=30.0,
                   metavar="SECONDS",
                   help="seconds without job progress before exiting so "
                        "the lease can fail over (default: %(default)s)")
    p.add_argument("--poll", type=float, default=0.5, metavar="SECONDS",
                   help="idle claim-poll interval (default: %(default)s)")
    p.add_argument("--once", action="store_true",
                   help="process at most one job, then exit (tests)")

    p = sub.add_parser("submit",
                       help="submit a job to a running service")
    p.add_argument("kind", choices=("campaign", "explore", "check",
                                    "family", "repair"))
    p.add_argument("params", nargs="*", metavar="KEY=VALUE",
                   help="job parameters, e.g. seed=0 count=50 "
                        "chaos=crash:3")
    p.add_argument("--url", default="http://127.0.0.1:8642", metavar="URL")
    p.add_argument("--key", default=None,
                   help="idempotency key: resubmitting the same key "
                        "returns the existing job instead of a new one")
    p.add_argument("--wait", action="store_true",
                   help="block until the job is terminal; exit 0 only on "
                        "'done'")
    p.add_argument("--timeout", type=float, default=600.0,
                   metavar="SECONDS",
                   help="--wait limit (default: %(default)s)")

    p = sub.add_parser("jobs",
                       help="list a running service's jobs (or one job, "
                            "with live progress)")
    p.add_argument("job_id", nargs="?", default=None,
                   help="show this job's document and live progress")
    p.add_argument("--url", default="http://127.0.0.1:8642", metavar="URL")
    p.add_argument("--state", choices=("queued", "leased", "done",
                                       "failed", "cancelled"), default=None)
    p.add_argument("--json", action="store_true", dest="as_json")
    p.add_argument("--cancel", action="store_true",
                   help="cancel the named job instead of showing it")

    p = sub.add_parser("chaos",
                       help="the failover scenario suite: inject worker "
                            "crashes/hangs, server kills, sqlite and "
                            "disk-full faults against a live service")
    p.add_argument("--spool", metavar="DIR", default=None,
                   help="scratch root for the scenario services "
                        "(default: a temp dir, removed on success)")
    p.add_argument("--scenario", action="append", dest="scenarios",
                   metavar="NAME", default=None,
                   help="run only this scenario (repeatable; default: "
                        "all of worker-crash, worker-hang, server-kill, "
                        "sqlite, diskfull)")
    p.add_argument("--lease-ttl", type=float, default=3.0,
                   metavar="SECONDS",
                   help="lease TTL for the scenario services — the "
                        "failover detection latency under test "
                        "(default: %(default)s)")
    return parser


def _cmd_stats(system, args) -> int:
    from .analysis import collect
    stats = collect(system)
    print(f"{'quantity':<26}{'paper':<20}ours")
    for quantity, paper, ours in stats.paper_comparison():
        print(f"{quantity:<26}{paper:<20}{ours}")
    print()
    for name, s in stats.per_table.items():
        print(f"{name:<4} {s.n_rows:>4} rows x {s.n_columns:>2} columns")
    return 0


def _cmd_check(system, args) -> int:
    report = system.check_invariants(batch=not args.no_batch)
    print(report.render())
    return 0 if report.passed else 1


def _cmd_deadlock(system, args) -> int:
    analysis = system.analyze_deadlocks(
        args.assignment,
        ignore_messages=not args.strict,
        closure=args.closure,
        engine=args.engine,
        workers=args.workers,
    )
    cycles = analysis.cycles()
    print(f"V = {args.assignment}: {analysis.vcg.number_of_nodes()} channels, "
          f"{analysis.vcg.number_of_edges()} dependencies, "
          f"{analysis.n_rows} dependency rows "
          f"({analysis.build_seconds:.2f}s)")
    if not cycles:
        print("no cycles: the assignment is deadlock-free")
        return 0
    for cycle in cycles:
        print(analysis.scenario(cycle))
    return 1


def _cmd_simulate(system, args) -> int:
    from .analysis.coverage import distinct_rows, read_ledger, write_ledger
    from .sim import (
        ensure_recorder,
        figure2_scenario,
        figure4_scenario,
        guided_workload,
        random_workload,
    )

    if args.guided:
        workload = guided_workload(system, assignment=args.assignment,
                                   seed=args.seed, n_ops=args.ops,
                                   epsilon=args.epsilon,
                                   frontier_dir=args.frontier_dir)
    elif args.workload == "fig2":
        workload = figure2_scenario(system, assignment=args.assignment)
    elif args.workload == "fig4":
        workload = figure4_scenario(system, assignment=args.assignment)
    else:
        workload = random_workload(system, assignment=args.assignment,
                                   seed=args.seed, n_ops=args.ops)
    sim = workload.simulator
    if args.coverage:
        # Coverage was decided at construction; rebuild the models' hook.
        ensure_recorder(sim)
    result = workload.run()

    print(f"{workload.description}")
    print(f"status: {result.status} after {result.steps} steps, "
          f"{result.messages} messages")
    if args.trace:
        for event in result.trace:
            print(f"  {event}")
    if result.deadlocked:
        print(result.deadlock_report)
    if args.coverage or args.guided:
        print(sim.coverage_report().render())
    if sim.recorder is not None:
        # Persist what this run exercised so the next --guided run (on
        # the same --db file) steers toward what is still unvisited.
        before = distinct_rows(read_ledger(system.db))
        total = write_ledger(system.db, sim.recorder)
        print(f"coverage ledger: {total} distinct rows "
              f"({total - before} new this run)")
    return 0 if result.status == "quiescent" else 1


def _cmd_mc(system, args) -> int:
    from .checkers import ExplicitStateChecker
    from .sim import figure4_scenario
    mc = ExplicitStateChecker(figure4_scenario(system, args.assignment))
    result = mc.run(max_states=args.max_states)
    print(f"explored {result.states} states / {result.transitions} "
          f"transitions in {result.seconds:.2f}s (depth {result.max_depth})")
    for depth, desc in result.deadlocks:
        print(f"deadlock at depth {depth}: {desc}")
    for depth, desc in result.violations:
        print(f"coherence violation at depth {depth}: {desc}")
    if result.truncated:
        print(f"search truncated at {args.max_states} states")
    return 0 if result.passed else 1


def _cmd_repair(system, args) -> int:
    import json

    from .core.repair import DeadlockRepairer
    from .runtime import JournalError, atomic_write_json

    baseline = None
    if args.baseline:
        try:
            with open(args.baseline, encoding="utf-8") as fh:
                baseline = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"repro: error: cannot read baseline "
                  f"{args.baseline!r}: {exc}", file=sys.stderr)
            return 2
    # ``for_system`` binds the repairer to the loaded system — under
    # --variant that is the family member's own tables, deadlock specs,
    # and V, and re-verification (invariants, oracle) runs against the
    # member too, not the MESI baseline.
    repairer = DeadlockRepairer.for_system(system, args.assignment)
    try:
        result = repairer.search(max_rounds=args.rounds,
                                 journal_path=args.journal)
    except JournalError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    repairer.reverify(result, oracle_depth=args.oracle_depth)
    print(result.render())
    rc = 0 if result.success else 1
    if not all(v.get("ok") for v in result.reverified):
        rc = 1
    if args.report or baseline is not None:
        from .analysis.closedloop import (build_repair_report,
                                          compare_repair_baseline)
        report = build_repair_report(
            system=system, assignment=args.assignment, rounds=args.rounds,
            oracle_depth=args.oracle_depth, result=result)
        for run in report["coverage"]["runs"]:
            print(f"coverage seed {run['seed']}: guided "
                  f"{run['guided_rows']} vs fixed {run['fixed_rows']} "
                  f"distinct rows ({run['delta']:+d})")
        if args.report:
            atomic_write_json(args.report, report)
        if baseline is not None:
            failures = compare_repair_baseline(report, baseline)
            if failures:
                print("closed-loop regressions vs baseline:")
                for failure in failures:
                    print(f"  FAIL {failure}")
                return 1
            print(f"no closed-loop regressions vs baseline "
                  f"({args.baseline})")
    return rc


def _cmd_map(system, args) -> int:
    from .protocols.asura.hardware import build_hardware_mapping
    hw = build_hardware_mapping(
        system.db, system.tables["D"], system.constraint_sets["D"],
    )
    print(f"ED: {hw.ed.row_count} rows x {len(hw.ed.schema)} columns")
    for name, part in hw.partitions.items():
        print(f"  {name:<18} {part.row_count:>4} rows")
    result = hw.check_preserved()
    print(result.summary_line())
    return 0 if result.passed else 1


def _cmd_codegen(system, args) -> int:
    from .core.codegen import generate_python, generate_verilog
    table = system.tables[args.table]
    if args.verilog:
        print(generate_verilog(table))
    else:
        print(generate_python(table))
    return 0


def _cmd_mutate(system, args) -> int:
    import json

    from .faults import compare_to_baseline, run_campaign
    from .runtime import JournalError, atomic_write_json

    classes = None
    if args.classes:
        classes = tuple(c.strip() for c in args.classes.split(",")
                        if c.strip())
    if args.resume and args.journal and args.resume != args.journal:
        print("repro: error: --resume already names the journal to "
              "continue; --journal must be omitted or identical",
              file=sys.stderr)
        return 2
    if args.matrix_out:
        try:
            # Fail fast on an unwritable matrix path, before the campaign.
            open(args.matrix_out, "a", encoding="utf-8").close()
        except OSError as exc:
            print(f"repro: error: {exc}", file=sys.stderr)
            return 2
    baseline = None
    if args.baseline:
        try:
            with open(args.baseline, encoding="utf-8") as fh:
                baseline = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"repro: error: cannot read baseline "
                  f"{args.baseline!r}: {exc}", file=sys.stderr)
            return 2
    try:
        result = run_campaign(
            system=system, seed=args.seed, count=args.count,
            classes=classes, assignment=args.assignment,
            workers=args.workers, isolation=args.isolation,
            timeout=args.timeout, journal_path=args.journal,
            resume_from=args.resume, oracle=args.oracle,
            oracle_depth=args.oracle_depth, oracle_nodes=args.oracle_nodes,
            oracle_kernel=args.oracle_kernel, repair=args.repair,
            repair_rounds=args.repair_rounds,
            repair_oracle_depth=args.repair_oracle_depth)
    except (ValueError, JournalError, OSError) as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    print(result.render())
    current = result.to_dict()
    if args.matrix_out:
        atomic_write_json(args.matrix_out, current)
    if baseline is not None:
        failures = compare_to_baseline(current, baseline)
        if failures:
            print("detection regressions vs baseline:")
            for failure in failures:
                print(f"  FAIL {failure}")
            return 1
        print(f"no detection regressions vs baseline ({args.baseline})")
    return 0


def _cmd_explore(system, args) -> int:
    from .explore import ExplorationError, ExploreConfig, ReachabilityExplorer
    from .runtime import JournalError, atomic_write_json

    if args.resume and args.journal and args.resume != args.journal:
        print("repro: error: --resume already names the journal to "
              "continue; --journal must be omitted or identical",
              file=sys.stderr)
        return 2
    if args.out:
        try:
            # Fail fast on an unwritable result path, before the search.
            open(args.out, "a", encoding="utf-8").close()
        except OSError as exc:
            print(f"repro: error: {exc}", file=sys.stderr)
            return 2
    if args.no_symmetry and args.symmetry not in (None, "off"):
        print("repro: error: --no-symmetry contradicts "
              f"--symmetry {args.symmetry}", file=sys.stderr)
        return 2
    # ``True`` (not "quad") when neither flag is given, so journal
    # headers written by older versions keep resuming cleanly.
    symmetry = "off" if args.no_symmetry else (args.symmetry or True)
    explorer = None
    try:
        # The member is pinned in the config (and thus the journal
        # header) so a resume under a different --variant is refused;
        # ``None`` for MESI keeps pre-family journals resuming cleanly.
        spec_key = getattr(getattr(system, "spec", None), "key", "mesi")
        config = ExploreConfig(
            nodes=args.nodes, depth=args.depth, lines=args.lines,
            assignment=args.assignment, workers=args.workers,
            capacity=args.capacity, symmetry=symmetry,
            kernel=args.kernel, frontier_dir=args.frontier_dir,
            quads=args.quads,
            variant=spec_key if spec_key != "mesi" else None,
            journal_path=args.journal, resume_from=args.resume)
        explorer = ReachabilityExplorer(system, config)
        result = explorer.run()
    except (ValueError, ExplorationError, JournalError, OSError) as exc:
        if explorer is not None:
            explorer.close()
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    try:
        # Persist before printing: a truncated stdout pipe (e.g. | head)
        # must not cost the --out file or the --save-db summary table.
        explorer.write_summary(system.db, result)
        if args.out:
            atomic_write_json(args.out, result.to_dict())
        print(result.render())
        for violation in result.violations:
            trace = explorer.counterexample(violation.digest)
            if trace:
                print(f"\ncounterexample ({violation.kind} at depth "
                      f"{violation.depth}):")
                print(trace)
    finally:
        explorer.close()
    return 0 if result.ok else 1


def _family_member_entry(system, args, failures: list) -> dict:
    """Run the whole differential pipeline for one generated member and
    return its benchmark entry; hard failures (a stage that should be
    clean on an unmutated system going red) are appended to ``failures``."""
    from .explore import ExploreConfig, ReachabilityExplorer
    from .faults import run_campaign
    from .sim import figure2_scenario, random_workload

    spec = system.spec
    stats = system.stats()
    entry: dict = {
        "title": spec.title,
        "rows": stats["total_rows"],
        "busy_states": stats["busy_states"],
    }

    report = system.check_invariants()
    entry["invariants"] = {"passed": report.passed,
                           "checks": len(report.results)}
    print(f"  invariants: {'PASS' if report.passed else 'FAIL'} "
          f"({len(report.results)} checks)")
    if not report.passed:
        failures.append(f"{spec.key}: invariant suite failed")

    entry["deadlock"] = {}
    for assignment in ("v4", "v5", "v5d"):
        analysis = system.analyze_deadlocks(assignment)
        cycles = analysis.cycles()
        entry["deadlock"][assignment] = {"free": not cycles,
                                         "cycles": len(cycles)}
        print(f"  deadlock {assignment}: "
              + ("free" if not cycles else f"{len(cycles)} cycle(s)"))
    if not entry["deadlock"]["v5d"]["free"]:
        failures.append(f"{spec.key}: v5d is not deadlock-free")

    entry["simulation"] = {}
    for name, workload in (
            ("fig2", figure2_scenario(system, assignment=args.assignment)),
            ("random", random_workload(system, assignment=args.assignment,
                                       seed=args.seed, n_ops=60))):
        result = workload.run()
        entry["simulation"][name] = {"status": result.status,
                                     "steps": result.steps}
        print(f"  simulate {name}: {result.status} ({result.steps} steps)")
        if result.status != "quiescent":
            failures.append(f"{spec.key}: {name} simulation "
                            f"{result.status}")

    config = ExploreConfig(
        nodes=args.nodes, depth=args.explore_depth,
        assignment=args.assignment,
        variant=spec.key if spec.key != "mesi" else None)
    explorer = ReachabilityExplorer(system, config)
    try:
        result = explorer.run()
    finally:
        explorer.close()
    entry["explore"] = {
        "states": result.states,
        "transitions": result.transitions,
        "violations": len(result.violations),
        "deadlocks": len(result.deadlocks),
        "ok": result.ok,
    }
    print(f"  explore: {result.states} states / {result.transitions} "
          f"transitions to depth {args.explore_depth}"
          + ("" if result.ok else
             f" — {len(result.violations)} violation(s), "
             f"{len(result.deadlocks)} deadlock(s)"))
    if not result.ok:
        failures.append(f"{spec.key}: clean-system exploration found "
                        f"violations")

    if not args.skip_campaign:
        campaign = run_campaign(
            system=system, seed=args.seed, count=args.count,
            assignment=args.assignment, oracle="explore",
            oracle_depth=args.oracle_depth, oracle_nodes=args.nodes)
        entry["campaign"] = campaign.to_dict()
        totals = campaign.totals()
        print(f"  campaign: {totals['count'] - totals['escaped']}"
              f"/{totals['count']} caught, "
              f"{totals['false_negatives']} oracle-only "
              f"(FN rate {totals['false_negative_rate'] * 100:.1f}%)")
        if totals["crashed"]:
            failures.append(f"{spec.key}: {totals['crashed']} campaign "
                            f"worker crash(es)")
    return entry


def _cmd_family(args) -> int:
    """The cross-family differential pipeline.  Self-loading: generates
    one fresh system per member instead of taking the single system the
    other subcommands get from :func:`_load_system`."""
    import json

    from .faults import compare_to_baseline
    from .protocols.family import SPECS, build_variant
    from .runtime import atomic_write_json

    if getattr(args, "db", None) or getattr(args, "save_db", None):
        print("repro: error: family generates its own databases; "
              "--db/--save-db do not apply", file=sys.stderr)
        return 2
    baseline = None
    if args.baseline:
        try:
            with open(args.baseline, encoding="utf-8") as fh:
                baseline = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"repro: error: cannot read baseline "
                  f"{args.baseline!r}: {exc}", file=sys.stderr)
            return 2
    if args.matrix_out:
        try:
            # Fail fast on an unwritable matrix path, before the runs.
            open(args.matrix_out, "a", encoding="utf-8").close()
        except OSError as exc:
            print(f"repro: error: {exc}", file=sys.stderr)
            return 2

    keys = tuple(SPECS) if args.all else (args.variant or "mesi",)
    members: dict = {}
    failures: list[str] = []
    for key in keys:
        print(f"=== {key} ===")
        system = build_variant(key)
        try:
            members[key] = _family_member_entry(system, args, failures)
        finally:
            system.db.close()

    bench = {
        "schema": "repro.family.bench/v1",
        "assignment": args.assignment,
        "nodes": args.nodes,
        "seed": args.seed,
        "count": args.count,
        "explore_depth": args.explore_depth,
        "oracle_depth": args.oracle_depth,
        "members": members,
    }
    if args.matrix_out:
        atomic_write_json(args.matrix_out, bench)
    regressions = []
    if baseline is not None:
        base_members = baseline.get("members", {})
        for key, entry in members.items():
            current = entry.get("campaign")
            base = base_members.get(key, {}).get("campaign")
            if current is None or base is None:
                continue
            regressions.extend(f"[{key}] {f}"
                               for f in compare_to_baseline(current, base))
        if regressions:
            print("detection regressions vs baseline:")
            for failure in regressions:
                print(f"  FAIL {failure}")
        else:
            print(f"no detection regressions vs baseline ({args.baseline})")
    if failures:
        print("family pipeline failures:")
        for failure in failures:
            print(f"  FAIL {failure}")
        return 1
    print(f"family: all {len(members)} member(s) clean")
    return 1 if regressions else 0


def _cmd_watch(args) -> int:
    from .runtime.watch import run_watch
    return run_watch(args.journal, events_path=args.events,
                     interval=args.interval, once=args.once,
                     as_json=args.as_json)


def _cmd_serve(args) -> int:
    import asyncio

    from .service import serve
    worker_args = ["--stall-timeout", str(args.stall_timeout),
                   "--poll", str(args.poll)]
    try:
        return asyncio.run(serve(
            spool=args.spool, host=args.host, port=args.port,
            capacity=args.capacity, lease_ttl=args.lease_ttl,
            workers=args.workers, sweep_interval=args.sweep_interval,
            worker_args=worker_args, port_file=args.port_file))
    except KeyboardInterrupt:
        return 0
    except OSError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2


def _cmd_worker(args) -> int:
    import signal

    from .service import Worker
    worker = Worker(args.url, spool=args.spool, worker_id=args.worker_id,
                    poll_interval=args.poll,
                    stall_timeout=args.stall_timeout)
    signal.signal(signal.SIGTERM, lambda *_: worker.stop())
    if args.once:
        return 0 if worker.run_one() else 1
    try:
        return worker.run_forever()
    except KeyboardInterrupt:
        return 0


def _parse_job_params(pairs: Sequence[str]) -> dict:
    params: dict = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep:
            raise ValueError(f"job parameter {pair!r} is not KEY=VALUE")
        try:
            params[key] = int(value)
        except ValueError:
            params[key] = value
    return params


def _cmd_submit(args) -> int:
    import json

    from .service import ServiceClient, ServiceError

    client = ServiceClient(args.url)
    try:
        params = _parse_job_params(args.params)
    except ValueError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    try:
        job = client.submit(args.kind, params, key=args.key)
        if args.wait:
            job = client.wait(job["job_id"], timeout=args.timeout)
    except ServiceError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    except TimeoutError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(job, indent=2, sort_keys=True))
    if args.wait:
        return 0 if job["state"] == "done" else 1
    return 0


def _render_job_row(job: dict) -> str:
    lease = job.get("lease") or {}
    holder = f" @{lease['worker']}" if lease else ""
    extras = []
    if job.get("attempts", 0) > 1 or job.get("expiries"):
        extras.append(f"attempt {job['attempts']}/{job['max_attempts']}")
    if job.get("expiries"):
        extras.append(f"{job['expiries']} expiry(s)")
    if job.get("duplicates"):
        extras.append(f"{job['duplicates']} duplicate(s)")
    suffix = f"  [{', '.join(extras)}]" if extras else ""
    return (f"{job['job_id']}  {job['kind']:<9} "
            f"{job['state']:<10}{holder}{suffix}")


def _cmd_jobs(args) -> int:
    import json

    from .service import ServiceClient, ServiceError

    client = ServiceClient(args.url)
    try:
        if args.job_id and args.cancel:
            doc = client.cancel(args.job_id)
        elif args.job_id:
            doc = client.status(args.job_id)
        else:
            doc = None
            jobs = client.jobs(state=args.state)
    except ServiceError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    if doc is not None:
        print(json.dumps(doc, indent=2, sort_keys=True))
        return 0
    if args.as_json:
        print(json.dumps(jobs, indent=2, sort_keys=True))
        return 0
    if not jobs:
        print("no jobs")
        return 0
    for job in jobs:
        print(_render_job_row(job))
    return 0


def _cmd_chaos(args) -> int:
    import shutil
    import tempfile

    from .service import run_scenarios

    spool = args.spool or tempfile.mkdtemp(prefix="repro-chaos-")
    try:
        results = run_scenarios(spool, names=args.scenarios,
                                lease_ttl=args.lease_ttl)
    except ValueError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    failed = [r for r in results if not r.passed]
    print(f"chaos: {len(results) - len(failed)}/{len(results)} "
          f"scenario(s) passed")
    if failed:
        print(f"chaos: artifacts kept at {spool}")
        return 1
    if args.spool is None:
        shutil.rmtree(spool, ignore_errors=True)
    return 0


#: subcommands that observe other runs rather than performing one: no
#: protocol database, no telemetry flags.  The service subcommands live
#: here too — ``serve``/``worker`` run jobs *for* clients (job-scoped
#: telemetry is configured per attempt by the runner), and
#: ``submit``/``jobs``/``chaos`` only talk to a server.
_NO_SYSTEM_COMMANDS = {
    "watch": _cmd_watch,
    "serve": _cmd_serve,
    "worker": _cmd_worker,
    "submit": _cmd_submit,
    "jobs": _cmd_jobs,
    "chaos": _cmd_chaos,
}

#: subcommands that build their own systems (one per family member)
#: instead of receiving the single one from :func:`_load_system`; they
#: still take the telemetry flags.
_SELF_SYSTEM_COMMANDS = {"family": _cmd_family}

_COMMANDS = {
    "stats": _cmd_stats,
    "check": _cmd_check,
    "deadlock": _cmd_deadlock,
    "simulate": _cmd_simulate,
    "mc": _cmd_mc,
    "repair": _cmd_repair,
    "map": _cmd_map,
    "codegen": _cmd_codegen,
    "mutate": _cmd_mutate,
    "explore": _cmd_explore,
}


class _SystemLoadError(RuntimeError):
    """A --db/--save-db path could not be used; the message is the
    user-facing diagnostic (printed without a traceback)."""


def _load_system(args):
    """Build or attach the protocol system per the --db/--save-db/--variant
    flags.  A ``--db`` file's family member comes from its own marker
    table; naming a conflicting ``--variant`` is an error rather than a
    silent reinterpretation of the tables."""
    import os
    import sqlite3

    from .core.database import DatabaseError, ProtocolDatabase
    from .core.schema import SchemaError
    from .protocols.family import (
        attach_variant,
        build_variant,
        read_variant_marker,
    )

    db_path = getattr(args, "db", None)
    save_path = getattr(args, "save_db", None)
    variant = getattr(args, "variant", None)
    if db_path and save_path:
        raise _SystemLoadError("--db and --save-db are mutually exclusive")
    if db_path:
        if not os.path.exists(db_path):
            raise _SystemLoadError(
                f"database file {db_path!r} does not exist "
                f"(generate one with --save-db)")
        try:
            db = ProtocolDatabase(db_path)
            marker = read_variant_marker(db)
            if variant is not None and variant != marker:
                raise _SystemLoadError(
                    f"--variant {variant} conflicts with the {marker!r} "
                    f"member recorded in {db_path!r}")
            return attach_variant(db, marker)
        except (DatabaseError, SchemaError, sqlite3.Error) as exc:
            raise _SystemLoadError(
                f"cannot load protocol database {db_path!r}: "
                f"{str(exc).splitlines()[0]}") from exc
    if save_path:
        try:
            return build_variant(variant or "mesi",
                                 ProtocolDatabase(save_path))
        except (DatabaseError, sqlite3.Error) as exc:
            raise _SystemLoadError(
                f"cannot generate a database at {save_path!r}: "
                f"{str(exc).splitlines()[0]}") from exc
    return build_variant(variant or "mesi")


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point: configure telemetry, build the system once (so table
    generation is captured too), dispatch to the subcommand, then export
    the requested telemetry artifacts."""
    from . import telemetry

    args = build_parser().parse_args(argv)
    if args.command in _NO_SYSTEM_COMMANDS:
        return _NO_SYSTEM_COMMANDS[args.command](args)
    collect = bool(args.profile or args.trace_out or args.report_out
                   or args.metrics_out)
    if collect:
        try:
            if args.report_out:
                # Fail fast on an unwritable report path — before the
                # build, not after the run's work is already done.
                open(args.report_out, "a", encoding="utf-8").close()
            tracer = telemetry.configure(
                trace_path=args.trace_out,
                metrics_path=args.metrics_out,
                trace_flush=not args.trace_buffered)
        except OSError as exc:
            print(f"repro: error: {exc}", file=sys.stderr)
            return 2
    else:
        tracer = telemetry.get_tracer()

    try:
        if args.command in _SELF_SYSTEM_COMMANDS:
            try:
                sink = io.StringIO() if args.quiet else None
                with contextlib.redirect_stdout(sink) if sink \
                        else contextlib.nullcontext():
                    return _SELF_SYSTEM_COMMANDS[args.command](args)
            except BrokenPipeError:
                try:
                    sys.stdout.close()
                except Exception:
                    pass
                return 0
        try:
            system = _load_system(args)
        except _SystemLoadError as exc:
            print(f"repro: error: {exc}", file=sys.stderr)
            return 2
        try:
            sink = io.StringIO() if args.quiet else None
            with contextlib.redirect_stdout(sink) if sink else contextlib.nullcontext():
                return _COMMANDS[args.command](system, args)
        except BrokenPipeError:
            # Output piped into a pager/head that exited early; not an error.
            try:
                sys.stdout.close()
            except Exception:
                pass
            return 0
        finally:
            system.db.close()
    finally:
        if collect:
            try:
                if args.report_out:
                    telemetry.write_report(
                        tracer, args.report_out,
                        command=args.command,
                        argv=list(argv) if argv is not None else sys.argv[1:],
                    )
                if args.profile:
                    print(telemetry.render_summary(tracer))
            finally:
                telemetry.shutdown()
