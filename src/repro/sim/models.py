"""Endpoint models: directory, node (cache + node controller), memory.

Each model is *table-driven*: it never hard-codes a transition.  It
computes the input-column values for an incoming message, looks the row
up in the generated controller table, and applies the row's outputs.  A
missing row is a protocol hole and raises :class:`SimProtocolError` with
full context — the dynamic analogue of the paper's static coverage
checks.

Models do not touch channels directly: :meth:`plan` returns a
:class:`TransitionPlan` (output envelopes + a state-apply callback) and
the scheduler performs the capacity check / commit, so blocking semantics
live in one place.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..core.table import ControllerTable, NoMatchError
from ..protocols import messages as M
from ..protocols import states as S
from .channel import Envelope

__all__ = [
    "SimProtocolError",
    "TransitionPlan",
    "DirectoryModel",
    "NodeModel",
    "MemoryModel",
    "IOModel",
    "quad_of",
    "abstract_pv",
]

_seq = itertools.count(1)


def next_seq() -> int:
    return next(_seq)


class SimProtocolError(RuntimeError):
    """The generated tables have no transition for a reachable situation."""


def quad_of(endpoint: str) -> int:
    """Endpoint ids are ``node:<quad>.<idx>``, ``dir:<quad>``, ``mem:<quad>``."""
    kind, rest = endpoint.split(":", 1)
    if kind == "node":
        return int(rest.split(".", 1)[0])
    return int(rest)


def abstract_pv(pv: set) -> str:
    """Abstract a concrete sharer set to the table encoding zero/one/gone."""
    if not pv:
        return S.PV_ZERO
    if len(pv) == 1:
        return S.PV_ONE
    return S.PV_GONE


@dataclass
class TransitionPlan:
    """What committing one transition requires and does."""

    outputs: list[Envelope]
    apply: Callable[[], None]
    label: str = ""


@dataclass
class BusyEntry:
    state: str
    pv: set
    requester: str


class DirectoryModel:
    """The directory + busy directory of one quad, executing table D."""

    def __init__(self, quad: int, table: ControllerTable, recorder=None) -> None:
        self.quad = quad
        self.table = table
        self.recorder = recorder
        self.endpoint = f"dir:{quad}"
        self.lines: dict[str, dict] = {}        # addr -> {"st": str, "pv": set}
        self.busy: dict[str, BusyEntry] = {}

    # -- state helpers -----------------------------------------------------------
    def line_state(self, addr: str) -> tuple[str, set]:
        entry = self.lines.get(addr)
        if entry is None:
            return S.DIR_I, set()
        return entry["st"], set(entry["pv"])

    def preset(self, addr: str, dirst: str, pv: set) -> None:
        """Install an initial directory entry (workload setup)."""
        if dirst == S.DIR_I:
            self.lines.pop(addr, None)
        else:
            self.lines[addr] = {"st": dirst, "pv": set(pv)}

    # -- table-driven transition ----------------------------------------------------
    def plan(self, env: Envelope) -> TransitionPlan:
        addr = env.addr
        dirst, pv = self.line_state(addr)
        b = self.busy.get(addr)
        bdirst = b.state if b else S.DIR_I
        bpv = set(b.pv) if b else set()
        is_req = M.is_request(env.msg)
        try:
            rowid, row = self.table.lookup_id(
                inmsg=env.msg,
                inmsgsrc=env.src_role,
                inmsgdst="home",
                inmsgres="reqq" if is_req else "respq",
                dirst=dirst,
                dirpv=abstract_pv(pv),
                dirlookup="miss" if dirst == S.DIR_I else "hit",
                bdirst=bdirst,
                bdirpv=abstract_pv(bpv),
                bdirlookup="miss" if bdirst == S.DIR_I else "hit",
                reqinpv="yes" if env.src in pv else "no",
            )
        except NoMatchError as e:
            raise SimProtocolError(
                f"directory {self.quad}: no transition for {env} "
                f"(dirst={dirst}, pv={sorted(pv)}, bdirst={bdirst}, "
                f"bpv={sorted(bpv)})"
            ) from e
        if self.recorder is not None:
            self.recorder.record(self.table.schema.name, rowid)

        # The requester a completion/retry is addressed to.
        if b is not None and row["locmsg"] != "retry":
            requester = b.requester
        else:
            requester = env.src

        outputs: list[Envelope] = []
        if row["locmsg"] is not None:
            outputs.append(Envelope(
                msg=row["locmsg"], src=self.endpoint, dst=requester, addr=addr,
                src_role=row["locmsgsrc"], dst_role=row["locmsgdst"],
                seq=next_seq(),
            ))
        snoop_targets: list[str] = []
        if row["remmsg"] is not None:
            snoop_targets = sorted(pv - {requester})
            if not snoop_targets:
                raise SimProtocolError(
                    f"directory {self.quad}: snoop {row['remmsg']} for {addr} "
                    f"with no targets (pv={sorted(pv)}, requester={requester})"
                )
            for target in snoop_targets:
                outputs.append(Envelope(
                    msg=row["remmsg"], src=self.endpoint, dst=target, addr=addr,
                    src_role=row["remmsgsrc"], dst_role=row["remmsgdst"],
                    seq=next_seq(),
                ))
        if row["memmsg"] is not None:
            outputs.append(Envelope(
                msg=row["memmsg"], src=self.endpoint, dst=f"mem:{self.quad}",
                addr=addr, src_role=row["memmsgsrc"], dst_role=row["memmsgdst"],
                seq=next_seq(),
            ))

        def apply() -> None:
            self._apply_row(env, row, addr, pv, requester)

        return TransitionPlan(outputs=outputs, apply=apply,
                              label=f"D{self.quad}:{env.msg}({addr})")

    def _apply_row(
        self, env: Envelope, row: dict, addr: str, old_pv: set, requester: str
    ) -> None:
        b = self.busy.get(addr)
        # Presence-vector operation, applied to the busy entry's saved
        # sharer set when one exists (the entry migrated to the busy
        # directory), otherwise to the live directory entry.
        base = set(b.pv) if b is not None else set(old_pv)
        op = row["nxtdirpv"]
        if op == S.PV_INC:
            base |= {requester}
        elif op == S.PV_DEC:
            base -= {env.src}
        elif op == S.PV_REPL:
            base = {requester}
        elif op == S.PV_DREPL:
            base -= {env.src}

        nxtdirst = row["nxtdirst"]
        if nxtdirst is not None:
            if nxtdirst == S.DIR_I:
                self.lines.pop(addr, None)
            else:
                self.lines[addr] = {"st": nxtdirst, "pv": base}
        elif op is not None and addr in self.lines:
            self.lines[addr]["pv"] = base

        # Busy-directory update.
        bop = row["nxtbdirpv"]
        new_bpv: Optional[set] = None
        if bop == S.BPV_LOAD:
            new_bpv = set(old_pv)
        elif bop == S.BPV_LOADX:
            new_bpv = set(old_pv) - {requester}
        elif bop == S.BPV_DEC:
            new_bpv = (set(b.pv) if b else set()) - {env.src}
        elif bop == S.BPV_CLR:
            new_bpv = set()

        nxtb = row["nxtbdirst"]
        if nxtb is not None:
            if nxtb == S.DIR_I:
                self.busy.pop(addr, None)
            elif b is None:
                self.busy[addr] = BusyEntry(
                    state=nxtb,
                    pv=new_bpv if new_bpv is not None else set(),
                    requester=env.src,
                )
            else:
                b.state = nxtb
                if new_bpv is not None:
                    b.pv = new_bpv
        elif new_bpv is not None and b is not None:
            b.pv = new_bpv


@dataclass
class TxnRegister:
    """One outstanding-transaction register of the node controller.

    Real nodes keep the miss status register separate from the victim
    (writeback) buffer — the paper's local node "concurrently issues
    wb(B) and readex(A)", which requires both to be outstanding at once.
    """

    pend: str = "none"
    addr: Optional[str] = None
    cache_req: Optional[str] = None   # miss_rd / miss_wr / wb_victim / flush_victim
    issue_linest: Optional[str] = None  # line state captured at issue time
    retry_at: Optional[int] = None

    @property
    def free(self) -> bool:
        return self.pend == "none"

    def clear(self) -> None:
        self.pend = "none"
        self.addr = None
        self.cache_req = None
        self.issue_linest = None
        self.retry_at = None


#: Cache requests held in the miss register vs the writeback buffer.
_MISS_REQS = ("miss_rd", "miss_wr")
_WB_REQS = ("wb_victim", "flush_victim")


class NodeModel:
    """One node: a MESI cache driven by table C plus a node controller
    driven by table N, with a miss register and a writeback buffer."""

    def __init__(
        self,
        node_id: str,
        cache_table: ControllerTable,
        node_table: ControllerTable,
        reissue_delay: int = 8,
        recorder=None,
    ) -> None:
        self.endpoint = node_id
        self.recorder = recorder
        self.quad = quad_of(node_id)
        self.cache_table = cache_table
        self.node_table = node_table
        self.reissue_delay = reissue_delay
        self.cache: dict[str, str] = {}          # addr -> MESI (absent = I)
        self.miss = TxnRegister()
        self.wb = TxnRegister()
        self.cpu_ops: list[tuple[str, str]] = []   # (op, addr) FIFO
        self.stats = {"ops": 0, "hits": 0, "misses": 0,
                      "retries": 0, "snoops": 0, "writebacks": 0}

    # -- helpers ---------------------------------------------------------------------
    def line(self, addr: str) -> str:
        return self.cache.get(addr, "I")

    def preset(self, addr: str, state: str) -> None:
        if state == "I":
            self.cache.pop(addr, None)
        else:
            self.cache[addr] = state

    def _set_line(self, addr: str, state: Optional[str]) -> None:
        if state is None:
            return
        if state == "I":
            self.cache.pop(addr, None)
        else:
            self.cache[addr] = state

    def _register_for(self, addr: str) -> Optional[TxnRegister]:
        """The transaction register tracking ``addr``, if any."""
        if self.miss.addr == addr and not self.miss.free:
            return self.miss
        if self.wb.addr == addr and not self.wb.free:
            return self.wb
        return None

    def _cache_row(self, op: str, addr: str, fillmode: Optional[str] = None) -> dict:
        try:
            rowid, row = self.cache_table.lookup_id(
                op=op, cachest=self.line(addr), fillmode=fillmode,
            )
            if self.recorder is not None:
                self.recorder.record(self.cache_table.schema.name, rowid)
            return row
        except NoMatchError as e:
            raise SimProtocolError(
                f"{self.endpoint}: cache has no transition for op={op} "
                f"state={self.line(addr)} fillmode={fillmode}"
            ) from e

    def _net_row_for_cache_req(self, cache_req: str, linest: str) -> dict:
        """Node-controller row for a cache-originated request.

        On re-issue after a retry the pending register is already occupied
        by this very transaction, so the lookup constrains everything
        except ``pend``.  Misses re-derive from the *current* line state
        (an upgrade whose line has since been invalidated must become a
        readex); writebacks use the state captured into the victim buffer.
        """
        matches = self.node_table._match({
            "inmsg": cache_req,
            "inmsgsrc": "cache",
            "inmsgdst": "local",
            "linest": linest,
        })
        if len(matches) != 1:
            raise SimProtocolError(
                f"{self.endpoint}: {len(matches)} node rows for cache request "
                f"{cache_req} with line state {linest}"
            )
        rowid, row = matches[0]
        if self.recorder is not None:
            self.recorder.record(self.node_table.schema.name, rowid)
        return row

    def _request_envelope(self, nrow: dict, addr: str) -> Envelope:
        return Envelope(
            msg=nrow["netmsg"], src=self.endpoint, dst="dir:{home}", addr=addr,
            src_role=nrow["netmsgsrc"], dst_role=nrow["netmsgdst"],
            seq=next_seq(),
        )

    # -- processor side ---------------------------------------------------------------
    def plan_cpu(self) -> Optional[TransitionPlan]:
        """Try to make progress on the oldest processor operation."""
        if not self.cpu_ops:
            return None
        op, addr = self.cpu_ops[0]
        if op == "evict" and self.line(addr) == "I":
            # Nothing to victimize (the line left the cache earlier);
            # workload convenience, not a protocol transition.
            def drop() -> None:
                self.cpu_ops.pop(0)
            return TransitionPlan([], drop, f"{self.endpoint}:evict({addr})noop")
        if self._register_for(addr) is not None:
            return None  # a transaction on this line is already in flight
        crow = self._cache_row(op, addr)

        if crow["nodemsg"] is None:
            # Pure cache hit (or silent state change).
            def apply_hit() -> None:
                self.cpu_ops.pop(0)
                self._set_line(addr, crow["nxtst"])
                self.stats["hits"] += 1
                self.stats["ops"] += 1
            return TransitionPlan([], apply_hit, f"{self.endpoint}:{op}({addr})hit")

        reg = self.miss if crow["nodemsg"] in _MISS_REQS else self.wb
        if not reg.free:
            return None
        linest = self.line(addr)
        nrow = self._net_row_for_cache_req(crow["nodemsg"], linest)
        out = self._request_envelope(nrow, addr)

        def apply_miss() -> None:
            self.cpu_ops.pop(0)
            self._set_line(addr, crow["nxtst"])
            reg.pend = nrow["nxtpend"]
            reg.addr = addr
            reg.cache_req = crow["nodemsg"]
            reg.issue_linest = linest
            self.stats["ops"] += 1
            if reg is self.miss:
                self.stats["misses"] += 1
            else:
                self.stats["writebacks"] += 1

        return TransitionPlan([out], apply_miss, f"{self.endpoint}:{op}({addr})miss")

    def plan_reissue(self, now: int) -> Optional[TransitionPlan]:
        """Re-issue a retried request once its backoff timer expires."""
        for reg in (self.miss, self.wb):
            if reg.retry_at is None or now < reg.retry_at:
                continue
            linest = (
                self.line(reg.addr) if reg is self.miss else reg.issue_linest
            )
            nrow = self._net_row_for_cache_req(reg.cache_req, linest)
            out = self._request_envelope(nrow, reg.addr)

            def apply(reg=reg, nrow=nrow) -> None:
                reg.retry_at = None
                reg.pend = nrow["nxtpend"]

            return TransitionPlan(
                [out], apply, f"{self.endpoint}:reissue({reg.addr})"
            )
        return None

    # -- network side --------------------------------------------------------------------
    def plan(self, env: Envelope, now: int) -> TransitionPlan:
        addr = env.addr
        reg = self._register_for(addr)
        pend_val = reg.pend if reg is not None else "none"
        # Snoops also hit the victim buffer: a line evicted but whose
        # writeback/flush has not been accepted yet is still this node's
        # responsibility, answered from the buffered state; the pending
        # writeback is then cancelled (its data travels with the reply).
        snooped_buffer = (
            env.msg in ("sinv", "sread")
            and reg is self.wb
            and reg.issue_linest is not None
        )
        linest = reg.issue_linest if snooped_buffer else self.line(addr)
        try:
            nrowid, nrow = self.node_table.lookup_id(
                inmsg=env.msg,
                inmsgsrc=env.src_role,
                inmsgdst=env.dst_role,
                pend=pend_val,
                linest=linest,
            )
        except NoMatchError as e:
            raise SimProtocolError(
                f"{self.endpoint}: no node transition for {env} "
                f"(pend={pend_val}, linest={self.line(addr)})"
            ) from e
        if self.recorder is not None:
            self.recorder.record(self.node_table.schema.name, nrowid)

        outputs: list[Envelope] = []
        if nrow["netmsg"] is not None:
            outputs.append(self._request_envelope(nrow, addr))

        def apply() -> None:
            if snooped_buffer:
                self.stats["snoops"] += 1
                reg.clear()  # the snoop reply carries/settles the victim
                return
            if nrow["cachemsg"] is not None:
                crow = self._cache_row(nrow["cachemsg"], addr, nrow["fillmode"])
                self._set_line(addr, crow["nxtst"])
            if nrow["nxtpend"] is not None and reg is not None:
                reg.pend = nrow["nxtpend"]
                if reg.pend == "none":
                    # Transaction done: replay the processor op that
                    # missed, so the store performs through the table
                    # (fill-exclusive lands E; the replayed st drives the
                    # silent E -> M transition).
                    if reg is self.miss and reg.cache_req == "miss_rd":
                        self.cpu_ops.insert(0, ("ld", addr))
                    elif reg is self.miss and reg.cache_req == "miss_wr":
                        self.cpu_ops.insert(0, ("st", addr))
                    reg.clear()
            if nrow["reissue"] == "yes" and reg is not None:
                reg.retry_at = now + self.reissue_delay
                self.stats["retries"] += 1
            if env.msg in ("sinv", "sread"):
                self.stats["snoops"] += 1

        return TransitionPlan(outputs, apply, f"{self.endpoint}:{env.msg}({addr})")


class MemoryModel:
    """The home memory controller of one quad, executing table M."""

    def __init__(self, quad: int, table: ControllerTable, refresh_until: int = 0,
                 recorder=None) -> None:
        self.quad = quad
        self.table = table
        self.recorder = recorder
        self.endpoint = f"mem:{quad}"
        #: while ``now < refresh_until`` the DRAM bank reports ``refresh``
        #: and the generated table's stall row holds the request.
        self.refresh_until = refresh_until
        self.versions: dict[str, int] = {}
        self.stats = {"reads": 0, "writes": 0, "stalls": 0}

    def plan(self, env: Envelope, now: int) -> Optional[TransitionPlan]:
        bankst = "refresh" if now < self.refresh_until else "ready"
        try:
            rowid, row = self.table.lookup_id(
                inmsg=env.msg, inmsgsrc=env.src_role, inmsgdst=env.dst_role,
                inmsgres="memq", bankst=bankst,
            )
        except NoMatchError as e:
            raise SimProtocolError(
                f"memory {self.quad}: no transition for {env}"
            ) from e
        if self.recorder is not None:
            self.recorder.record(self.table.schema.name, rowid)
        if row["stall"] == "yes":
            self.stats["stalls"] += 1
            return None  # hold the request while the bank refreshes

        outputs: list[Envelope] = []
        if row["outmsg"] is not None:
            outputs.append(Envelope(
                msg=row["outmsg"], src=self.endpoint, dst=f"dir:{self.quad}",
                addr=env.addr, src_role=row["outmsgsrc"], dst_role=row["outmsgdst"],
                seq=next_seq(),
            ))

        def apply() -> None:
            if row["arrayop"] == "wr":
                self.versions[env.addr] = self.versions.get(env.addr, 0) + 1
                self.stats["writes"] += 1
            else:
                self.stats["reads"] += 1

        return TransitionPlan(outputs, apply, f"M{self.quad}:{env.msg}({env.addr})")


class IOModel:
    """The I/O controller of one quad, executing table IO.

    Device-initiated reads/writes are queued on the (always sinkable)
    device interface, issued onto the coherence fabric as ior/iow, and
    completed back to the device.  Retries are absorbed and re-issued,
    like the node controller's.
    """

    def __init__(self, quad: int, table: ControllerTable,
                 reissue_delay: int = 8, recorder=None) -> None:
        self.quad = quad
        self.table = table
        self.recorder = recorder
        self.reissue_delay = reissue_delay
        self.endpoint = f"io:{quad}"
        self.iost = "idle"
        self.pend_addr: Optional[str] = None
        self.pend_op: Optional[str] = None   # io_read / io_write
        self.retry_at: Optional[int] = None
        self.dev_ops: list[tuple[str, str]] = []   # (op, addr) FIFO
        self.delivered: list[tuple[str, str]] = []  # (devmsg, addr) to device
        self.stats = {"reads": 0, "writes": 0, "intrs": 0, "retries": 0}

    def _row(self, inmsg: str, src: str, dst: str, iost) -> dict:
        try:
            rowid, row = self.table.lookup_id(
                inmsg=inmsg, inmsgsrc=src, inmsgdst=dst, iost=iost,
            )
        except NoMatchError as e:
            raise SimProtocolError(
                f"{self.endpoint}: no transition for {inmsg} (iost={iost})"
            ) from e
        if self.recorder is not None:
            self.recorder.record(self.table.schema.name, rowid)
        return row

    def _issue_envelope(self, row: dict, addr: str) -> Envelope:
        return Envelope(
            msg=row["netmsg"], src=self.endpoint, dst="dir:{home}",
            addr=addr, src_role=row["netmsgsrc"], dst_role=row["netmsgdst"],
            seq=next_seq(),
        )

    # -- device side --------------------------------------------------------
    def plan_dev(self) -> Optional[TransitionPlan]:
        if not self.dev_ops:
            return None
        op, addr = self.dev_ops[0]
        if op == "dev_intr":
            row = self._row("dev_intr", "dev", "local", self.iost)

            def apply_intr() -> None:
                self.dev_ops.pop(0)
                self.delivered.append((row["devmsg"], addr))
                self.stats["intrs"] += 1
            return TransitionPlan([], apply_intr,
                                  f"{self.endpoint}:dev_intr")
        if self.iost != "idle":
            return None  # one outstanding I/O transaction
        row = self._row(op, "dev", "local", "idle")
        out = self._issue_envelope(row, addr)

        def apply() -> None:
            self.dev_ops.pop(0)
            self.iost = row["nxtiost"]
            self.pend_addr = addr
            self.pend_op = op
            self.stats["reads" if op == "io_read" else "writes"] += 1

        return TransitionPlan([out], apply, f"{self.endpoint}:{op}({addr})")

    def plan_reissue(self, now: int) -> Optional[TransitionPlan]:
        if self.retry_at is None or now < self.retry_at:
            return None
        row = self._row(self.pend_op, "dev", "local", "idle")
        out = self._issue_envelope(row, self.pend_addr)

        def apply() -> None:
            self.retry_at = None

        return TransitionPlan([out], apply, f"{self.endpoint}:reissue")

    # -- network side ---------------------------------------------------------
    def plan(self, env: Envelope, now: int) -> TransitionPlan:
        row = self._row(env.msg, env.src_role, env.dst_role, self.iost)

        def apply() -> None:
            if row["devmsg"] is not None:
                self.delivered.append((row["devmsg"], env.addr))
            if row["nxtiost"] is not None:
                self.iost = row["nxtiost"]
                if self.iost == "idle":
                    self.pend_addr = None
                    self.pend_op = None
            if row["reissue"] == "yes":
                self.retry_at = now + self.reissue_delay
                self.stats["retries"] += 1

        return TransitionPlan([], apply, f"{self.endpoint}:{env.msg}")
