"""Virtual channels as finite FIFO resources.

Deadlocks in ASURA "arise ... due to cyclic dependencies between finite
channel resources used by the requests and responses" (section 4.1).  The
fabric instantiates one FIFO queue per (virtual channel, destination
quad): every node in a quad shares the channel instances entering that
quad, which is exactly the sharing the quad-placement relations reason
about statically.

Dedicated channels (the paper's fix) are unbounded and can always accept.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterator, Optional

from ..core.deadlock import ChannelAssignment

__all__ = ["Envelope", "VirtualChannelQueue", "ChannelFabric"]


@dataclass(frozen=True)
class Envelope:
    """One message in flight between two concrete endpoints."""

    msg: str
    src: str        # endpoint id, e.g. "node:1.0", "dir:2", "mem:2"
    dst: str
    addr: str       # cache-line address, e.g. "A"
    src_role: str   # quad role used for V routing and table lookups
    dst_role: str
    seq: int = 0    # global send order, for traces

    def __str__(self) -> str:
        return f"{self.msg}({self.addr}) {self.src}->{self.dst}"


class VirtualChannelQueue:
    """One FIFO instance of a virtual channel into one quad."""

    def __init__(self, name: str, dst_quad: int, capacity: Optional[int]) -> None:
        self.name = name
        self.dst_quad = dst_quad
        self.capacity = capacity  # None = unbounded (dedicated path)
        self._q: deque[Envelope] = deque()

    @property
    def key(self) -> tuple[str, int]:
        return (self.name, self.dst_quad)

    def __len__(self) -> int:
        return len(self._q)

    def can_accept(self, n: int = 1) -> bool:
        if self.capacity is None:
            return True
        return len(self._q) + n <= self.capacity

    @property
    def full(self) -> bool:
        return not self.can_accept(1)

    def push(self, env: Envelope) -> None:
        if not self.can_accept(1):
            raise RuntimeError(f"channel {self.key} is full")
        self._q.append(env)

    def head(self) -> Optional[Envelope]:
        return self._q[0] if self._q else None

    def pop(self) -> Envelope:
        return self._q.popleft()

    def __iter__(self) -> Iterator[Envelope]:
        return iter(self._q)

    def __repr__(self) -> str:
        cap = "inf" if self.capacity is None else str(self.capacity)
        return f"VC({self.name}->q{self.dst_quad}, {len(self._q)}/{cap})"


class ChannelFabric:
    """All channel instances of the system, created lazily."""

    def __init__(
        self,
        assignment: ChannelAssignment,
        default_capacity: int = 1,
        capacities: Optional[dict[str, int]] = None,
    ) -> None:
        self.assignment = assignment
        self.default_capacity = default_capacity
        self.capacities = dict(capacities or {})
        self._queues: dict[tuple[str, int], VirtualChannelQueue] = {}

    def channel_for(self, msg: str, src_role: str, dst_role: str) -> str:
        """The virtual channel V assigns to this message/route."""
        return self.assignment.lookup(msg, src_role, dst_role)

    def queue(self, vc: str, dst_quad: int) -> VirtualChannelQueue:
        key = (vc, dst_quad)
        q = self._queues.get(key)
        if q is None:
            if vc in self.assignment.dedicated:
                cap: Optional[int] = None
            else:
                cap = self.capacities.get(vc, self.default_capacity)
            q = VirtualChannelQueue(vc, dst_quad, cap)
            self._queues[key] = q
        return q

    def queue_for(
        self, msg: str, src_role: str, dst_role: str, dst_quad: int
    ) -> VirtualChannelQueue:
        return self.queue(self.channel_for(msg, src_role, dst_role), dst_quad)

    def queues(self) -> list[VirtualChannelQueue]:
        return list(self._queues.values())

    def pending_messages(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def occupancy(self) -> dict[tuple[str, int], int]:
        return {q.key: len(q) for q in self._queues.values() if len(q)}
