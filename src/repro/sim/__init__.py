"""Table-driven protocol simulator.

The debugged controller tables are executable: the simulator instantiates
quads, nodes, directories and memories, routes messages over finite
virtual channels according to a channel assignment V, and drives every
controller *from its generated table* (the whole point of the paper's
methodology — the artifact that was verified is the artifact that runs).

A controller consumes an input message only when every output channel the
transition requires has free space; with capacity-1 channels and the
Figure 4 schedule this reproduces the paper's deadlock dynamically, and
the monitor reports the channel wait-for cycle.
"""

from .channel import ChannelFabric, Envelope, VirtualChannelQueue
from .system import SimConfig, SimResult, Simulator
from .trace import render_sequence, transaction_slice
from .workloads import (
    IO_OPS,
    ensure_recorder,
    figure2_scenario,
    figure4_scenario,
    guided_workload,
    random_workload,
    Workload,
    WorkloadOp,
)

__all__ = [
    "ChannelFabric",
    "Envelope",
    "VirtualChannelQueue",
    "SimConfig",
    "SimResult",
    "Simulator",
    "Workload",
    "WorkloadOp",
    "IO_OPS",
    "ensure_recorder",
    "figure2_scenario",
    "figure4_scenario",
    "guided_workload",
    "random_workload",
    "render_sequence",
    "transaction_slice",
]
