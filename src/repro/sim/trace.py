"""Trace rendering: Figure-2-style sequence diagrams in text.

The paper's Figure 2 draws a transaction as numbered arcs between the
local node, the directory/home, the remote node, and memory.  The
renderer lays simulation traces out the same way: one column per
endpoint, one numbered line per message.

    local      home       remote     memory
      |--1 readex-->|
      |            |--2 sinv-->|
      ...
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from .system import TraceEvent

__all__ = ["render_sequence", "transaction_slice", "events_from_telemetry"]


def events_from_telemetry(events: Iterable[dict]) -> list[TraceEvent]:
    """Rebuild :class:`TraceEvent` records from a telemetry event stream.

    The simulator emits one ``sim.message`` JSONL event per delivered
    message (see ``--trace-out``); this filters a decoded stream (e.g.
    from :func:`repro.telemetry.read_jsonl`) back into the trace-event
    form the Figure-2 renderer consumes, so sequence diagrams can be
    drawn offline from a recorded run.
    """
    out: list[TraceEvent] = []
    for e in events:
        if e.get("type") != "sim.message":
            continue
        out.append(TraceEvent(
            step=e["step"], seq=e["seq"], msg=e["msg"],
            src=e["src"], dst=e["dst"], addr=e["addr"],
            channel=e["channel"],
        ))
    return out


def _endpoint_order(events: Sequence[TraceEvent]) -> list[str]:
    """Stable endpoint columns: sources/destinations in appearance order,
    grouped so nodes come first, then directories, memories, I/O."""
    seen: list[str] = []
    for e in events:
        for ep in (e.src, e.dst):
            if ep not in seen:
                seen.append(ep)
    rank = {"node": 0, "dir": 1, "mem": 2, "io": 3}
    return sorted(seen, key=lambda ep: (rank.get(ep.split(":")[0], 9),
                                        seen.index(ep)))


def transaction_slice(
    events: Iterable[TraceEvent], addr: str
) -> list[TraceEvent]:
    """Only the messages of one cache line's transactions."""
    return [e for e in events if e.addr == addr]


def render_sequence(
    events: Sequence[TraceEvent],
    addr: Optional[str] = None,
    width: int = 14,
) -> str:
    """Render a trace as a text sequence diagram.

    ``addr`` filters to one line's transaction (like Figure 2, which
    shows a single readex); message numbers give the relative order, as
    the numbers on the figure's arcs do.
    """
    if addr is not None:
        events = transaction_slice(events, addr)
    events = list(events)
    if not events:
        return "(no messages)"
    endpoints = _endpoint_order(events)
    col = {ep: i for i, ep in enumerate(endpoints)}

    header = "".join(ep.ljust(width) for ep in endpoints)
    lines = [header, ""]
    for n, e in enumerate(events, start=1):
        a, b = col[e.src], col[e.dst]
        left, right = (a, b) if a < b else (b, a)
        label = f" {n} {e.msg}({e.addr}) "
        span = (right - left) * width
        body = label.center(span - 2, "-")
        if a < b:
            arrow = "|" + body + ">"
        else:
            arrow = "<" + body + "|"
        line = " " * (left * width) + arrow
        lines.append(line)
    return "\n".join(lines)
