"""The simulator: topology, scheduler, deadlock monitor, coherence checks.

The scheduler is conservative about channel resources, matching the
static model of section 4.1: an input message keeps occupying its channel
slot until the transition commits, and a transition commits only when
every output channel instance has space for every message it emits.  A
full pass with no progress and messages still in flight is a deadlock;
the monitor then extracts the channel wait-for cycle.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Optional

import networkx as nx

from ..analysis.coverage import CoverageRecorder, CoverageReport, coverage_report
from ..core.deadlock import ChannelAssignment
from ..telemetry import get_tracer, span
from ..protocols import messages as M
from ..protocols.asura.system import AsuraSystem
from .channel import ChannelFabric, Envelope, VirtualChannelQueue
from .models import (
    DirectoryModel,
    IOModel,
    MemoryModel,
    NodeModel,
    SimProtocolError,
    TransitionPlan,
    quad_of,
)

__all__ = ["SimConfig", "SimResult", "Simulator", "CoherenceError", "TraceEvent"]


class CoherenceError(AssertionError):
    """The single-writer/multiple-reader property was violated."""


@dataclass
class TraceEvent:
    """One message transfer, for Figure-2-style renderings."""

    step: int
    seq: int
    msg: str
    src: str
    dst: str
    addr: str
    channel: str

    def __str__(self) -> str:
        return (f"[{self.step:4d}] {self.msg}({self.addr}) "
                f"{self.src} -> {self.dst} on {self.channel}")


@dataclass
class SimConfig:
    """Topology and resource parameters."""

    n_quads: int = 2
    nodes_per_quad: int = 2
    default_capacity: int = 1
    capacities: dict = field(default_factory=dict)
    reissue_delay: int = 8
    memory_refresh_until: int = 0
    #: addr -> home quad; addresses default to quad hash(addr) % n_quads
    home_map: dict = field(default_factory=dict)
    max_steps: int = 10_000
    check_coherence: bool = True
    #: record which controller-table rows fire (transition coverage)
    coverage: bool = False


@dataclass
class SimResult:
    status: str  # 'quiescent' | 'deadlock' | 'maxsteps'
    steps: int
    messages: int
    trace: list
    deadlock_cycle: list = field(default_factory=list)
    deadlock_report: str = ""
    node_stats: dict = field(default_factory=dict)

    @property
    def deadlocked(self) -> bool:
        return self.status == "deadlock"


class Simulator:
    """Executes the generated ASURA tables over a quad topology."""

    def __init__(
        self,
        system: AsuraSystem,
        assignment: str = "v5d",
        config: Optional[SimConfig] = None,
        *,
        tables: Optional[dict] = None,
    ) -> None:
        self.system = system
        self.config = config or SimConfig()
        # The models execute self.tables; injecting compiled KernelTables
        # here swaps the SQL lookup path for the dispatch kernels while
        # everything else (scheduler, fabric, commit rules) is shared —
        # the kernel-vs-simulator parity hook.
        self.tables = dict(tables) if tables is not None else system.tables
        self.channels: ChannelAssignment = system.channel_assignments[assignment]
        capacities = dict(self.config.capacities)
        # Invalidations multicast to every sharer in a quad in one
        # transition; the snoop channel is sized for that worst case, as
        # real designs size their invalidate buffers to the node count.
        capacities.setdefault(
            "VC1", max(self.config.default_capacity,
                       self.config.nodes_per_quad),
        )
        self.fabric = ChannelFabric(
            self.channels,
            default_capacity=self.config.default_capacity,
            capacities=capacities,
        )
        self.recorder = CoverageRecorder() if self.config.coverage else None
        self.directories = {
            q: DirectoryModel(q, self.tables["D"], recorder=self.recorder)
            for q in range(self.config.n_quads)
        }
        self.memories = {
            q: MemoryModel(q, self.tables["M"],
                           refresh_until=self.config.memory_refresh_until,
                           recorder=self.recorder)
            for q in range(self.config.n_quads)
        }
        self.nodes: dict[str, NodeModel] = {}
        for q in range(self.config.n_quads):
            for i in range(self.config.nodes_per_quad):
                nid = f"node:{q}.{i}"
                self.nodes[nid] = NodeModel(
                    nid, self.tables["C"], self.tables["N"],
                    reissue_delay=self.config.reissue_delay,
                    recorder=self.recorder,
                )
        self.ios = {
            q: IOModel(q, self.tables["IO"],
                       reissue_delay=self.config.reissue_delay,
                       recorder=self.recorder)
            for q in range(self.config.n_quads)
        }
        self.now = 0
        self.trace: list[TraceEvent] = []
        self.messages_delivered = 0
        self._blocked_edges: list[tuple[VirtualChannelQueue, VirtualChannelQueue]] = []
        # Resolved once: the hot paths check a single attribute per message.
        self._tracer = get_tracer()

    # -- setup ------------------------------------------------------------------
    def home_quad(self, addr: str) -> int:
        if addr in self.config.home_map:
            return self.config.home_map[addr]
        return sum(addr.encode()) % self.config.n_quads

    def preset_line(self, addr: str, dirst: str, sharers: dict[str, str]) -> None:
        """Install an initial coherent configuration: the directory entry
        at the home quad plus cache states at the sharing nodes."""
        home = self.home_quad(addr)
        self.directories[home].preset(addr, dirst, set(sharers))
        for nid, state in sharers.items():
            self.nodes[nid].preset(addr, state)

    def inject_op(self, node_id: str, op: str, addr: str) -> None:
        self.nodes[node_id].cpu_ops.append((op, addr))
        if self._tracer.enabled:
            self._tracer.emit("sim.op", kind="cpu", endpoint=node_id,
                              op=op, addr=addr)

    def inject_io(self, quad: int, op: str, addr: str) -> None:
        """Queue a device-initiated operation (io_read/io_write/dev_intr)
        at a quad's I/O controller."""
        self.ios[quad].dev_ops.append((op, addr))
        if self._tracer.enabled:
            self._tracer.emit("sim.op", kind="device", endpoint=f"io:{quad}",
                              op=op, addr=addr)

    # -- routing ---------------------------------------------------------------------
    def _resolve_dst(self, env: Envelope) -> Envelope:
        if env.dst == "dir:{home}":
            return Envelope(
                env.msg, env.src, f"dir:{self.home_quad(env.addr)}", env.addr,
                env.src_role, env.dst_role, env.seq,
            )
        return env

    def _queue_for(self, env: Envelope) -> VirtualChannelQueue:
        vc = self.fabric.channel_for(env.msg, env.src_role, env.dst_role)
        return self.fabric.queue(vc, quad_of(env.dst))

    # -- commit logic -------------------------------------------------------------------
    def _try_commit(
        self,
        plan: TransitionPlan,
        input_queue: Optional[VirtualChannelQueue],
    ) -> bool:
        """Atomically commit a transition if every output fits."""
        outs = [self._resolve_dst(e) for e in plan.outputs]
        need = Counter(self._queue_for(e).key for e in outs)
        queues = {self._queue_for(e).key: self._queue_for(e) for e in outs}
        blocked = [q for key, q in queues.items() if not q.can_accept(need[key])]
        if blocked:
            if input_queue is not None:
                for q in blocked:
                    self._blocked_edges.append((input_queue, q))
            return False
        if input_queue is not None:
            input_queue.pop()
        plan.apply()
        for e in outs:
            q = self._queue_for(e)
            q.push(e)
            self.trace.append(TraceEvent(
                self.now, e.seq, e.msg, e.src, e.dst, e.addr, q.name,
            ))
            if self._tracer.enabled:
                self._tracer.emit(
                    "sim.message", step=self.now, seq=e.seq, msg=e.msg,
                    src=e.src, dst=e.dst, addr=e.addr, channel=q.name,
                )
        return True

    def _plan_for(self, env: Envelope) -> Optional[TransitionPlan]:
        kind = env.dst.split(":", 1)[0]
        if kind == "dir":
            return self.directories[quad_of(env.dst)].plan(env)
        if kind == "mem":
            return self.memories[quad_of(env.dst)].plan(env, self.now)
        if kind == "node":
            return self.nodes[env.dst].plan(env, self.now)
        if kind == "io":
            return self.ios[quad_of(env.dst)].plan(env, self.now)
        raise SimProtocolError(f"unroutable destination {env.dst!r}")

    # -- the step loop -----------------------------------------------------------------------
    def step(self) -> bool:
        """One scheduler pass; returns True if anything progressed."""
        progress = False
        self._blocked_edges.clear()

        # Processor side: re-issues first (they unblock the system), then
        # new processor and device operations.
        for node in self.nodes.values():
            plan = node.plan_reissue(self.now)
            if plan is not None and self._try_commit(plan, None):
                progress = True
        for io in self.ios.values():
            plan = io.plan_reissue(self.now)
            if plan is not None and self._try_commit(plan, None):
                progress = True
        for node in self.nodes.values():
            plan = node.plan_cpu()
            if plan is not None and self._try_commit(plan, None):
                progress = True
        for io in self.ios.values():
            plan = io.plan_dev()
            if plan is not None and self._try_commit(plan, None):
                progress = True

        # Network side: drain channel heads.  Response-class channels
        # first (the PE arbiter's response priority).
        queues = sorted(
            self.fabric.queues(),
            key=lambda q: (not self._is_response_queue(q), q.name, q.dst_quad),
        )
        for q in queues:
            env = q.head()
            if env is None:
                continue
            plan = self._plan_for(env)
            if plan is None:
                continue  # endpoint holds the message (memory refresh)
            if self._try_commit(plan, q):
                progress = True
                self.messages_delivered += 1

        self.now += 1
        if self.config.check_coherence:
            self.check_coherence()
        return progress

    @staticmethod
    def _is_response_queue(q: VirtualChannelQueue) -> bool:
        env = q.head()
        return env is not None and env.msg in M.RESPONSE_NAMES

    def _pending_reissues(self) -> list[int]:
        out = [
            reg.retry_at
            for n in self.nodes.values()
            for reg in (n.miss, n.wb)
            if reg.retry_at is not None
        ]
        out += [io.retry_at for io in self.ios.values()
                if io.retry_at is not None]
        return out

    def _pending_cpu_work(self) -> bool:
        return (any(n.cpu_ops for n in self.nodes.values())
                or any(io.dev_ops for io in self.ios.values()))

    def _wait_cycle(self) -> list:
        """A cycle in the channel wait-for graph of the last step, if any."""
        g = nx.DiGraph()
        for q1, q2 in self._blocked_edges:
            g.add_edge(q1.key, q2.key)
        try:
            return [a for a, _ in nx.find_cycle(g)]
        except nx.NetworkXNoCycle:
            return []

    def run(self, max_steps: Optional[int] = None) -> SimResult:
        """Run to quiescence, deadlock, or the step limit."""
        with span("sim.run", assignment=self.channels.name,
                  quads=self.config.n_quads):
            result = self._run(max_steps)
        if self._tracer.enabled:
            self._tracer.incr("sim.messages_delivered",
                              self.messages_delivered)
            self._tracer.incr("sim.steps", result.steps)
            self._tracer.incr(f"sim.runs.{result.status}")
            self._tracer.emit("sim.result", status=result.status,
                              steps=result.steps, messages=result.messages)
        return result

    def _run(self, max_steps: Optional[int] = None) -> SimResult:
        limit = max_steps or self.config.max_steps
        while self.now < limit:
            progress = self.step()
            if progress:
                continue
            # A cycle among full channels can never drain in this model:
            # genuine deadlock, no timer can rescue it.
            cycle = self._wait_cycle()
            if cycle:
                return self._deadlock_result(cycle)
            # Otherwise idle until the next timer (retry backoff, DRAM
            # refresh end) — that is latency, not deadlock.
            wakeups = self._pending_reissues()
            wakeups += [
                m.refresh_until
                for m in self.memories.values()
                if self.now < m.refresh_until
            ]
            wakeups = [w for w in wakeups if w < limit]
            if wakeups:
                self.now = max(self.now, min(wakeups))
                continue
            if (self.fabric.pending_messages() or self._outstanding()
                    or self._pending_cpu_work()):
                return self._deadlock_result([])
            return self._result("quiescent")
        return self._result("maxsteps")

    def _outstanding(self) -> bool:
        return any(
            not reg.free
            for n in self.nodes.values()
            for reg in (n.miss, n.wb)
        ) or any(io.iost != "idle" for io in self.ios.values())

    # -- results & monitoring -----------------------------------------------------------
    def _result(self, status: str, **kw) -> SimResult:
        return SimResult(
            status=status,
            steps=self.now,
            messages=self.messages_delivered,
            trace=self.trace,
            node_stats={n: dict(m.stats) for n, m in self.nodes.items()},
            **kw,
        )

    def _deadlock_result(self, cycle: list) -> SimResult:
        lines = ["dynamic deadlock detected:"]
        for q in self.fabric.queues():
            if len(q):
                lines.append(f"  {q!r}: " + ", ".join(str(e) for e in q))
        if cycle:
            lines.append(
                "  wait cycle: " + " -> ".join(f"{vc}@q{qd}" for vc, qd in cycle)
            )
        return self._result(
            "deadlock",
            deadlock_cycle=cycle,
            deadlock_report="\n".join(lines),
        )

    # -- coverage ----------------------------------------------------------------------------
    def coverage_report(self) -> CoverageReport:
        """Transition coverage over the simulated controller tables
        (requires ``SimConfig(coverage=True)``)."""
        if self.recorder is None:
            raise RuntimeError(
                "coverage recording is off; construct with "
                "SimConfig(coverage=True)"
            )
        simulated = {
            name: self.system.tables[name]
            for name in ("D", "M", "C", "N", "IO")
        }
        return coverage_report(self.recorder, simulated)

    # -- coherence ---------------------------------------------------------------------------
    def check_coherence(self) -> None:
        """Single-writer/multiple-reader: never two owners of a line, and
        never an owner coexisting with shared copies.

        Family-aware: a forwarder state (MOESI ``O``, MESIF ``F``) counts
        as a shared copy — it may coexist with ``S`` holders but never
        with an exclusive owner, and a line has at most one forwarder.
        """
        spec = getattr(self.system, "spec", None)
        fwd = spec.forward_state if spec is not None else None
        holders: dict[str, list[tuple[str, str]]] = {}
        for nid, node in self.nodes.items():
            for addr, st in node.cache.items():
                holders.setdefault(addr, []).append((nid, st))
        for addr, hs in holders.items():
            owners = [nid for nid, st in hs if st in ("M", "E")]
            sharers = [nid for nid, st in hs
                       if st == "S" or (fwd is not None and st == fwd)]
            forwarders = [nid for nid, st in hs if st == fwd]
            if len(owners) > 1:
                raise CoherenceError(
                    f"line {addr}: multiple owners {owners} at step {self.now}"
                )
            if owners and sharers:
                raise CoherenceError(
                    f"line {addr}: owner {owners[0]} coexists with sharers "
                    f"{sharers} at step {self.now}"
                )
            if len(forwarders) > 1:
                raise CoherenceError(
                    f"line {addr}: multiple forwarders ({fwd}) "
                    f"{forwarders} at step {self.now}"
                )

    def check_directory_agreement(self) -> None:
        """At quiescence the directory must cover the caches.

        The presence vector may *overcount* (a node answering a snoop
        from its victim buffer stays tracked until the next invalidate —
        the standard conservative-directory property) but must never
        undercount, and ownership must be tracked exactly.
        """
        for addr in {a for n in self.nodes.values() for a in n.cache}:
            home = self.home_quad(addr)
            dirst, pv = self.directories[home].line_state(addr)
            cached = {
                nid for nid, n in self.nodes.items() if n.line(addr) != "I"
            }
            if not cached <= pv:
                raise CoherenceError(
                    f"line {addr}: directory pv {sorted(pv)} misses cached "
                    f"copies {sorted(cached - pv)}"
                )
            owners = [
                nid for nid, n in self.nodes.items() if n.line(addr) in ("M", "E")
            ]
            if owners and dirst != "MESI":
                raise CoherenceError(
                    f"line {addr}: owned by {owners} but directory says {dirst}"
                )
            if dirst == "MESI" and owners and set(owners) != pv:
                raise CoherenceError(
                    f"line {addr}: directory owner {sorted(pv)} != cache "
                    f"owner {owners}"
                )
