"""Workloads: the paper's directed scenarios plus random traffic.

* :func:`figure2_scenario` — the Read Exclusive transaction of Figure 2:
  a local store to a line cached shared at a remote node drives the
  sinv/mread/idone/data/compl message exchange.

* :func:`figure4_scenario` — the deadlock of Figure 4: interleaved
  writeback of B and read-exclusive of A, with local in one quad and both
  home and remote in the other (placement L != H = R), capacity-1
  channels, and memory timing that lets idone(A) occupy VC2 before the
  writeback is serviced.

* :func:`random_workload` — seeded random loads/stores/evictions for
  soak testing; the coherence checker runs every step.

* :func:`guided_workload` — coverage-guided traffic: reads the
  persisted row-coverage ledger (``__coverage_ledger``) out of the
  protocol database and synthesizes a seeded greedy/ε-random schedule
  biased toward controller tables with unvisited rows — including the
  device-initiated IO operations no fixed scenario issues — optionally
  starting from an explorer frontier state sampled out of a
  ``SuccessorStore``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from ..analysis.coverage import CoverageRecorder, read_ledger
from ..protocols.asura.system import AsuraSystem
from ..telemetry import get_tracer
from .system import SimConfig, Simulator

__all__ = [
    "WorkloadOp",
    "Workload",
    "IO_OPS",
    "figure2_scenario",
    "figure4_scenario",
    "random_workload",
    "guided_workload",
    "ensure_recorder",
]

#: device-initiated operations; a :class:`WorkloadOp` carries them with
#: ``node="io:<quad>"`` and they enter through ``Simulator.inject_io``.
IO_OPS = ("io_read", "io_write", "dev_intr")


@dataclass(frozen=True)
class WorkloadOp:
    node: str  # node id, or "io:<quad>" for device-initiated ops
    op: str    # ld / st / evict / io_read / io_write / dev_intr
    addr: str


@dataclass
class Workload:
    """A prepared simulator plus the operations to inject."""

    simulator: Simulator
    ops: list[WorkloadOp] = field(default_factory=list)
    description: str = ""

    def inject_all(self) -> None:
        for op in self.ops:
            if op.op in IO_OPS:
                quad = int(op.node.split(":", 1)[1])
                self.simulator.inject_io(quad, op.op, op.addr)
            else:
                self.simulator.inject_op(op.node, op.op, op.addr)

    def run(self, max_steps: Optional[int] = None):
        self.inject_all()
        return self.simulator.run(max_steps)


def figure2_scenario(system: AsuraSystem, assignment: str = "v5d") -> Workload:
    """Figure 2: readex at D with the line cached SI at a remote node."""
    config = SimConfig(
        n_quads=2,
        nodes_per_quad=2,
        default_capacity=2,
        home_map={"X": 0},
    )
    sim = Simulator(system, assignment=assignment, config=config)
    # Line X homed at quad 0; node:0.1 (a remote node of the home quad)
    # holds it shared; node:1.0 is the local requester.
    sim.preset_line("X", "SI", {"node:0.1": "S"})
    return Workload(
        simulator=sim,
        ops=[WorkloadOp("node:1.0", "st", "X")],
        description="Figure 2: read-exclusive transaction at the directory",
    )


def figure4_scenario(system: AsuraSystem, assignment: str = "v5") -> Workload:
    """Figure 4: the VC2/VC4 deadlock (run with ``v5``), or its resolution
    (run with ``v5d``).

    Quad 1 is home for both lines; the local node is in quad 0 (placement
    L != H = R).  B is modified at local, A is modified at a remote node
    in the home quad.  Local issues wb(B) then readex(A); remote evicts A
    before the invalidate arrives; the DRAM bank refreshes long enough
    that idone(A) reaches VC2 while wbmem(B) still sits in VC4.
    """
    config = SimConfig(
        n_quads=2,
        nodes_per_quad=2,
        default_capacity=1,
        home_map={"A": 1, "B": 1},
        memory_refresh_until=6,
        # Retried requests must not wake the system up while we are
        # checking for the deadlock: back off beyond the step limit.
        reissue_delay=10**6,
    )
    sim = Simulator(system, assignment=assignment, config=config)
    local, remote = "node:0.0", "node:1.1"
    sim.preset_line("B", "MESI", {local: "M"})
    # A is clean-exclusive at the remote node: its eviction is a flush
    # that gets cancelled when the invalidate snoops the victim buffer,
    # so the snoop reply is the idone of the paper's scenario and D must
    # fetch the data from memory with mread — the R2 dependency.
    sim.preset_line("A", "MESI", {remote: "E"})
    return Workload(
        simulator=sim,
        ops=[
            WorkloadOp(local, "evict", "B"),   # -> wb(B)
            WorkloadOp(local, "st", "A"),      # -> readex(A) after wb completes?
            WorkloadOp(remote, "evict", "A"),  # -> wb(A), retried; line leaves cache
        ],
        description="Figure 4: interleaved wb(B)/readex(A) deadlock",
    )


def random_workload(
    system: AsuraSystem,
    assignment: str = "v5d",
    n_quads: int = 2,
    nodes_per_quad: int = 2,
    n_lines: int = 4,
    n_ops: int = 60,
    seed: int = 0,
    capacity: int = 2,
) -> Workload:
    """Seeded random traffic over a small line set (maximizing conflict)."""
    rng = random.Random(seed)
    config = SimConfig(
        n_quads=n_quads,
        nodes_per_quad=nodes_per_quad,
        default_capacity=capacity,
        home_map={f"L{i}": i % n_quads for i in range(n_lines)},
        reissue_delay=6,
    )
    sim = Simulator(system, assignment=assignment, config=config)
    nodes = list(sim.nodes)
    addrs = [f"L{i}" for i in range(n_lines)]
    ops = []
    for _ in range(n_ops):
        node = rng.choice(nodes)
        addr = rng.choice(addrs)
        op = rng.choices(("ld", "st", "evict"), weights=(5, 3, 1))[0]
        ops.append(WorkloadOp(node, op, addr))
    return Workload(
        simulator=sim,
        ops=ops,
        description=f"random workload (seed={seed}, {n_ops} ops)",
    )


#: controller tables each operation kind can exercise (primary first).
#: The map drives the greedy policy: an op kind scores by how much of
#: its tables is still uncovered, so once the processor-side rows are
#: exhausted the generator pivots to the device-initiated transactions
#: that no fixed scenario or random CPU workload ever issues.
_OP_TABLES: dict[str, tuple[str, ...]] = {
    "ld": ("C", "N", "D", "M"),
    "st": ("C", "N", "D", "M"),
    "evict": ("N", "D", "M", "C"),
    "io_read": ("IO", "D", "M"),
    "io_write": ("IO", "D", "M"),
    "dev_intr": ("IO", "N"),
}

#: score weight of an op kind's primary vs secondary tables.
_PRIMARY_WEIGHT, _SECONDARY_WEIGHT = 1.0, 0.35

#: per-pick attenuation of a table's uncovered estimate — the policy
#: assumes each injected op will cover some of the rows it targets, so
#: repeated greedy picks of one kind decay toward the alternatives.
_PRIMARY_DECAY, _SECONDARY_DECAY = 0.90, 0.985


def ensure_recorder(sim: Simulator) -> CoverageRecorder:
    """Attach a coverage recorder to an already-built simulator (coverage
    is normally decided at construction; this rebuilds the model hooks)."""
    if sim.recorder is None:
        sim.recorder = CoverageRecorder()
        for model in (*sim.directories.values(), *sim.memories.values(),
                      *sim.nodes.values(), *sim.ios.values()):
            model.recorder = sim.recorder
        sim.config.coverage = True
    return sim.recorder


def _frontier_preset(system, frontier_dir: str, assignment: str,
                     seed: int, nodes: int, lines: int, capacity: int,
                     symmetry, quads: Optional[int]):
    """Build an explorer-topology simulator restored into one sampled
    frontier state, or ``None`` when the store is absent or was built
    for a different protocol/topology fingerprint."""
    import os

    from ..explore.explorer import ExploreConfig, _build_simulator
    from ..explore.state import restore_state
    from ..explore.store import sample_frontier_states, system_fingerprint

    config = ExploreConfig(nodes=nodes, lines=lines, assignment=assignment,
                           capacity=capacity, symmetry=symmetry, quads=quads)
    path = os.path.join(frontier_dir, "frontier.sqlite")
    samples = sample_frontier_states(
        path, k=1, seed=seed,
        fingerprint=system_fingerprint(system, config))
    if not samples:
        return None
    home_map = {f"L{i}": 0 for i in range(lines)}
    sim = _build_simulator(system, config, home_map)
    digest, state = samples[0]
    restore_state(sim, state)
    return sim, home_map, digest


def guided_workload(
    system: AsuraSystem,
    assignment: str = "v5d",
    n_quads: int = 2,
    nodes_per_quad: int = 2,
    n_lines: int = 4,
    n_ops: int = 60,
    seed: int = 0,
    capacity: int = 2,
    epsilon: float = 0.2,
    ledger: Optional[CoverageRecorder] = None,
    frontier_dir: Optional[str] = None,
    frontier_nodes: int = 2,
    frontier_lines: int = 1,
    frontier_capacity: int = 1,
    frontier_symmetry=True,
    frontier_quads: Optional[int] = None,
) -> Workload:
    """Coverage-guided traffic: ops biased toward unvisited table rows.

    The generator reads the row-coverage ledger persisted in the
    protocol database (``ledger=None``; pass a recorder to override),
    estimates the uncovered fraction of each controller table, and emits
    a seeded schedule: with probability ``epsilon`` a uniformly random
    op kind (exploration), otherwise the kind whose tables hold the most
    unvisited rows (greedy), decaying the estimate as picks accumulate.
    Device-initiated IO transactions participate on equal footing with
    processor ops — the coverage gap every fixed scenario leaves open.

    With ``frontier_dir`` the simulator additionally starts from an
    explorer frontier state sampled out of the ``SuccessorStore`` there
    (when its fingerprint matches the ``frontier_*`` topology), so the
    schedule continues from the edge of what exhaustive search reached
    instead of from the reset state.
    """
    rng = random.Random(seed)
    if ledger is None:
        ledger = read_ledger(system.db)

    preset = None
    if frontier_dir is not None:
        preset = _frontier_preset(
            system, frontier_dir, assignment, seed, frontier_nodes,
            frontier_lines, frontier_capacity, frontier_symmetry,
            frontier_quads)
        get_tracer().incr("coverage.guided.frontier_hit" if preset
                          else "coverage.guided.frontier_miss")

    if preset is not None:
        sim, home_map, digest = preset
        origin = f"frontier state {digest[:12]}"
    else:
        config = SimConfig(
            n_quads=n_quads,
            nodes_per_quad=nodes_per_quad,
            default_capacity=capacity,
            home_map={f"L{i}": i % n_quads for i in range(n_lines)},
            reissue_delay=6,
        )
        sim = Simulator(system, assignment=assignment, config=config)
        home_map = config.home_map
        origin = "reset state"
    ensure_recorder(sim)

    nodes = sorted(sim.nodes)
    addrs = list(home_map)
    quads = list(range(sim.config.n_quads))
    kinds = list(_OP_TABLES)

    # Uncovered-fraction estimate per controller table, from the ledger.
    frac: dict[str, float] = {}
    for name in ("D", "M", "C", "N", "IO"):
        table = system.tables.get(name)
        if table is None:
            frac[name] = 0.0
            continue
        total = table.row_count
        covered = len(ledger.hits.get(name, ()))
        frac[name] = max(0.0, (total - covered) / total) if total else 0.0

    def score(kind: str) -> float:
        tables = _OP_TABLES[kind]
        s = _PRIMARY_WEIGHT * frac.get(tables[0], 0.0)
        for t in tables[1:]:
            s += _SECONDARY_WEIGHT * frac.get(t, 0.0)
        return s

    ops: list[WorkloadOp] = []
    prev_addr: Optional[str] = None
    for _ in range(n_ops):
        if rng.random() < epsilon:
            kind = rng.choice(kinds)
        else:
            best = max(score(k) for k in kinds)
            kind = rng.choice([k for k in kinds
                               if score(k) >= best - 1e-9])
        tables = _OP_TABLES[kind]
        frac[tables[0]] = frac.get(tables[0], 0.0) * _PRIMARY_DECAY
        for t in tables[1:]:
            frac[t] = frac.get(t, 0.0) * _SECONDARY_DECAY
        # Conflict bias: half the time revisit the previous line so
        # invalidation/forwarding rows get exercised, not just misses.
        if prev_addr is not None and rng.random() < 0.5:
            addr = prev_addr
        else:
            addr = rng.choice(addrs)
        prev_addr = addr
        if kind in IO_OPS:
            ops.append(WorkloadOp(f"io:{rng.choice(quads)}", kind, addr))
        else:
            ops.append(WorkloadOp(rng.choice(nodes), kind, addr))

    get_tracer().incr("coverage.guided.ops", len(ops))
    return Workload(
        simulator=sim,
        ops=ops,
        description=(f"guided workload (seed={seed}, {n_ops} ops, "
                     f"epsilon={epsilon}, from {origin})"),
    )
