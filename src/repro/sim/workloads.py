"""Workloads: the paper's directed scenarios plus random traffic.

* :func:`figure2_scenario` — the Read Exclusive transaction of Figure 2:
  a local store to a line cached shared at a remote node drives the
  sinv/mread/idone/data/compl message exchange.

* :func:`figure4_scenario` — the deadlock of Figure 4: interleaved
  writeback of B and read-exclusive of A, with local in one quad and both
  home and remote in the other (placement L != H = R), capacity-1
  channels, and memory timing that lets idone(A) occupy VC2 before the
  writeback is serviced.

* :func:`random_workload` — seeded random loads/stores/evictions for
  soak testing; the coherence checker runs every step.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from ..protocols.asura.system import AsuraSystem
from .system import SimConfig, Simulator

__all__ = [
    "WorkloadOp",
    "Workload",
    "figure2_scenario",
    "figure4_scenario",
    "random_workload",
]


@dataclass(frozen=True)
class WorkloadOp:
    node: str
    op: str   # ld / st / evict
    addr: str


@dataclass
class Workload:
    """A prepared simulator plus the operations to inject."""

    simulator: Simulator
    ops: list[WorkloadOp] = field(default_factory=list)
    description: str = ""

    def inject_all(self) -> None:
        for op in self.ops:
            self.simulator.inject_op(op.node, op.op, op.addr)

    def run(self, max_steps: Optional[int] = None):
        self.inject_all()
        return self.simulator.run(max_steps)


def figure2_scenario(system: AsuraSystem, assignment: str = "v5d") -> Workload:
    """Figure 2: readex at D with the line cached SI at a remote node."""
    config = SimConfig(
        n_quads=2,
        nodes_per_quad=2,
        default_capacity=2,
        home_map={"X": 0},
    )
    sim = Simulator(system, assignment=assignment, config=config)
    # Line X homed at quad 0; node:0.1 (a remote node of the home quad)
    # holds it shared; node:1.0 is the local requester.
    sim.preset_line("X", "SI", {"node:0.1": "S"})
    return Workload(
        simulator=sim,
        ops=[WorkloadOp("node:1.0", "st", "X")],
        description="Figure 2: read-exclusive transaction at the directory",
    )


def figure4_scenario(system: AsuraSystem, assignment: str = "v5") -> Workload:
    """Figure 4: the VC2/VC4 deadlock (run with ``v5``), or its resolution
    (run with ``v5d``).

    Quad 1 is home for both lines; the local node is in quad 0 (placement
    L != H = R).  B is modified at local, A is modified at a remote node
    in the home quad.  Local issues wb(B) then readex(A); remote evicts A
    before the invalidate arrives; the DRAM bank refreshes long enough
    that idone(A) reaches VC2 while wbmem(B) still sits in VC4.
    """
    config = SimConfig(
        n_quads=2,
        nodes_per_quad=2,
        default_capacity=1,
        home_map={"A": 1, "B": 1},
        memory_refresh_until=6,
        # Retried requests must not wake the system up while we are
        # checking for the deadlock: back off beyond the step limit.
        reissue_delay=10**6,
    )
    sim = Simulator(system, assignment=assignment, config=config)
    local, remote = "node:0.0", "node:1.1"
    sim.preset_line("B", "MESI", {local: "M"})
    # A is clean-exclusive at the remote node: its eviction is a flush
    # that gets cancelled when the invalidate snoops the victim buffer,
    # so the snoop reply is the idone of the paper's scenario and D must
    # fetch the data from memory with mread — the R2 dependency.
    sim.preset_line("A", "MESI", {remote: "E"})
    return Workload(
        simulator=sim,
        ops=[
            WorkloadOp(local, "evict", "B"),   # -> wb(B)
            WorkloadOp(local, "st", "A"),      # -> readex(A) after wb completes?
            WorkloadOp(remote, "evict", "A"),  # -> wb(A), retried; line leaves cache
        ],
        description="Figure 4: interleaved wb(B)/readex(A) deadlock",
    )


def random_workload(
    system: AsuraSystem,
    assignment: str = "v5d",
    n_quads: int = 2,
    nodes_per_quad: int = 2,
    n_lines: int = 4,
    n_ops: int = 60,
    seed: int = 0,
    capacity: int = 2,
) -> Workload:
    """Seeded random traffic over a small line set (maximizing conflict)."""
    rng = random.Random(seed)
    config = SimConfig(
        n_quads=n_quads,
        nodes_per_quad=nodes_per_quad,
        default_capacity=capacity,
        home_map={f"L{i}": i % n_quads for i in range(n_lines)},
        reissue_delay=6,
    )
    sim = Simulator(system, assignment=assignment, config=config)
    nodes = list(sim.nodes)
    addrs = [f"L{i}" for i in range(n_lines)]
    ops = []
    for _ in range(n_ops):
        node = rng.choice(nodes)
        addr = rng.choice(addrs)
        op = rng.choices(("ld", "st", "evict"), weights=(5, 3, 1))[0]
        ops.append(WorkloadOp(node, op, addr))
    return Workload(
        simulator=sim,
        ops=ops,
        description=f"random workload (seed={seed}, {n_ops} ops)",
    )
