"""Static deadlock detection via virtual-channel dependency graphs
(paper sections 4.1–4.2).

Pipeline, following the paper step by step:

1. A **virtual channel assignment** ``V`` is a table ``(m, s, d, v)``:
   message ``m`` from source ``s`` to destination ``d`` travels on virtual
   channel ``v``.  Channels may be marked *dedicated* (the paper's fix for
   the Figure 4 deadlock adds "a dedicated hardware path from directory
   controller to the home memory controller for mread requests");
   dedicated channels are unbounded and excluded from the VCG.

2. For each controller table, an **individual controller dependency
   table** is built: one row per (incoming assignment, outgoing
   assignment) pair, i.e. processing message ``m1`` on ``vc1`` requires
   emitting ``m2`` on ``vc2``.

3. The exact tables correspond to the placement L!=H!=R; **four more
   sets** are derived for the other quad placements by substituting merged
   node roles in the source/destination fields.

4. Tables are composed **pairwise** within each placement (output
   assignment of one row matches input assignment of another; optionally
   ignoring messages, which captures transaction interleavings).  The
   union of everything is the **protocol dependency table**.

5. Every row contributes an edge ``in_vc -> out_vc`` to the **VCG**; a
   cycle is a potential deadlock and is reported with witness rows.
"""

from __future__ import annotations

import os
import sqlite3
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Iterable, Mapping, Optional, Sequence

import networkx as nx

from ..telemetry import get_tracer, span

from ..analysis.cycles import (
    canonical_cycle,
    cyclic_vertices_networkx,
    cyclic_vertices_sql,
    find_cycles_networkx,
)
from .database import SNAPSHOT_SUPPORTED, IndexSpec, ProtocolDatabase
from .quad import ALL_PLACEMENTS, Placement
from .report import CheckResult, Report
from .sqlgen import quote_ident, quote_value
from .table import ControllerTable

__all__ = [
    "VCAssignment",
    "ChannelAssignment",
    "MissingAssignmentError",
    "MessageTriple",
    "ControllerMessageSpec",
    "DependencyRow",
    "DeadlockAnalyzer",
    "DeadlockAnalysis",
]


class MissingAssignmentError(KeyError):
    """A controller row exchanges a message with no entry in V."""


@dataclass(frozen=True)
class VCAssignment:
    """One row of V: message ``m`` from ``s`` to ``d`` rides channel ``v``."""

    message: str
    src: str
    dst: str
    channel: str


class ChannelAssignment:
    """The paper's table V plus the set of dedicated (unbounded) channels."""

    def __init__(
        self,
        name: str,
        assignments: Iterable[VCAssignment],
        dedicated: Iterable[str] = (),
    ) -> None:
        self.name = name
        self.assignments = tuple(assignments)
        self.dedicated = frozenset(dedicated)
        self._index: dict[tuple[str, str, str], str] = {}
        for a in self.assignments:
            key = (a.message, a.src, a.dst)
            if key in self._index and self._index[key] != a.channel:
                raise ValueError(
                    f"V {name!r}: conflicting channels for {key}: "
                    f"{self._index[key]} vs {a.channel}"
                )
            self._index[key] = a.channel

    def lookup(self, message: str, src: str, dst: str) -> str:
        try:
            return self._index[(message, src, dst)]
        except KeyError:
            raise MissingAssignmentError(
                f"V {self.name!r} has no channel for message {message!r} "
                f"from {src!r} to {dst!r}"
            ) from None

    def channels(self) -> set[str]:
        return {a.channel for a in self.assignments}

    def blocking_channels(self) -> set[str]:
        """Channels that participate in the VCG (finite resources)."""
        return self.channels() - self.dedicated

    def to_table(self, db: ProtocolDatabase, table_name: Optional[str] = None) -> str:
        """Materialize V in the database with the paper's column names.

        V is a relation, so duplicate (consistent) assignments collapse to
        one row — the composition joins rely on (m, s, d) being a key.
        """
        name = table_name or f"V_{self.name}"
        seen: set[VCAssignment] = set()
        unique = [a for a in self.assignments
                  if not (a in seen or seen.add(a))]
        db.create_table_from_rows(
            name,
            ("m", "s", "d", "v"),
            [
                {"m": a.message, "s": a.src, "d": a.dst, "v": a.channel}
                for a in unique
            ],
        )
        return name

    def reassigned(
        self,
        name: str,
        changes: Mapping[tuple[str, str, str], str],
        dedicated: Optional[Iterable[str]] = None,
    ) -> "ChannelAssignment":
        """A new assignment with some (m, s, d) entries moved to other
        channels — the paper's debugging loop 'resolved by modifying V'."""
        new = []
        for a in self.assignments:
            key = (a.message, a.src, a.dst)
            ch = changes.get(key, a.channel)
            new.append(VCAssignment(a.message, a.src, a.dst, ch))
        ded = self.dedicated if dedicated is None else frozenset(dedicated)
        return ChannelAssignment(name, new, ded)


@dataclass(frozen=True)
class MessageTriple:
    """The (message, source, destination) column triple of one message
    column of a controller table (paper section 2.1)."""

    msg: str
    src: str
    dst: str


@dataclass
class ControllerMessageSpec:
    """Which columns of a controller table carry messages.

    ``input_triple`` names the incoming-message columns; each entry of
    ``output_triples`` names one outgoing-message column group.
    """

    controller: ControllerTable
    input_triple: MessageTriple
    output_triples: tuple[MessageTriple, ...]

    @property
    def name(self) -> str:
        return self.controller.schema.name


@dataclass(frozen=True)
class DependencyRow:
    """One row of a dependency table: input assignment, output assignment,
    plus provenance for witness reports."""

    in_msg: str
    in_src: str
    in_dst: str
    in_vc: str
    out_msg: str
    out_src: str
    out_dst: str
    out_vc: str
    controller: str
    placement: str
    derived: str  # 'direct' or 'composed'

    def edge(self) -> tuple[str, str]:
        return (self.in_vc, self.out_vc)

    def __str__(self) -> str:
        return (
            f"({self.in_msg}, {self.in_src}, {self.in_dst}, {self.in_vc} | "
            f"{self.out_msg}, {self.out_src}, {self.out_dst}, {self.out_vc}) "
            f"[{self.controller}, {self.placement}, {self.derived}]"
        )


_DEP_COLUMNS = (
    "in_msg",
    "in_src",
    "in_dst",
    "in_vc",
    "out_msg",
    "out_src",
    "out_dst",
    "out_vc",
    "controller",
    "placement",
    "derived",
)


def _dep_index_specs(table: str) -> tuple[IndexSpec, ...]:
    """The indexes every composition join relies on: probing direct rows
    by input assignment, by output assignment, and the dedup key."""
    return (
        IndexSpec(table, ("placement", "derived", "in_src", "in_dst", "in_vc"),
                  name=table + "_in"),
        IndexSpec(table, ("placement", "derived", "out_src", "out_dst", "out_vc"),
                  name=table + "_out"),
        IndexSpec(table, ("placement", "in_msg", "in_vc", "out_msg", "out_vc"),
                  name=table + "_dedup"),
    )


class DeadlockAnalyzer:
    """Builds the protocol dependency table and the VCG for one channel
    assignment over a set of controller tables.

    Two interchangeable engines build the table:

    * ``engine="sql"`` (default) — steps 2–4 run entirely inside the
      database: direct dependencies are extracted by joining each
      controller table against V, placements are derived with CASE
      substitutions, and composition is an indexed self-join.  Rows never
      round-trip through Python.  With ``workers > 1`` (and Python 3.11+,
      see :data:`~repro.core.database.SNAPSHOT_SUPPORTED`) the quad
      placements fan out across threads, each composing against a private
      ``serialize()``/``deserialize()`` snapshot of the central database.
    * ``engine="python"`` — the original row-at-a-time extraction loops,
      kept as the oracle the parity tests compare against.
    """

    def __init__(
        self,
        db: ProtocolDatabase,
        specs: Sequence[ControllerMessageSpec],
        channels: ChannelAssignment,
        engine: str = "sql",
        workers: Optional[int] = None,
    ) -> None:
        if engine not in ("sql", "python"):
            raise ValueError(f"unknown deadlock engine {engine!r}")
        self.db = db
        self.specs = tuple(specs)
        self.channels = channels
        self.engine = engine
        self.workers = workers

    # -- step 2: individual controller dependency tables -----------------------
    def controller_dependency_rows(
        self, spec: ControllerMessageSpec
    ) -> list[DependencyRow]:
        """Exact-placement (L!=H!=R) dependency rows for one controller."""
        rows: list[DependencyRow] = []
        it = spec.input_triple
        for row in spec.controller.rows():
            m1, s1, d1 = row[it.msg], row[it.src], row[it.dst]
            if m1 is None:
                continue
            if s1 is None or d1 is None:
                continue
            v1 = self.channels.lookup(m1, s1, d1)
            for ot in spec.output_triples:
                m2, s2, d2 = row[ot.msg], row[ot.src], row[ot.dst]
                if m2 is None:
                    continue
                if s2 is None or d2 is None:
                    continue
                v2 = self.channels.lookup(m2, s2, d2)
                rows.append(
                    DependencyRow(
                        m1, s1, d1, v1, m2, s2, d2, v2,
                        controller=spec.name,
                        placement=Placement.ALL_DISTINCT.value,
                        derived="direct",
                    )
                )
        return rows

    @staticmethod
    def apply_placement(
        rows: Iterable[DependencyRow], placement: Placement
    ) -> list[DependencyRow]:
        """Derive a placement's dependency table by substituting merged
        node roles in the source/destination fields (channels unchanged —
        exactly how the paper rewrites R2 to R2')."""
        out = []
        for r in rows:
            out.append(
                DependencyRow(
                    r.in_msg,
                    placement.apply(r.in_src),
                    placement.apply(r.in_dst),
                    r.in_vc,
                    r.out_msg,
                    placement.apply(r.out_src),
                    placement.apply(r.out_dst),
                    r.out_vc,
                    controller=r.controller,
                    placement=placement.value,
                    derived="direct",
                )
            )
        return out

    # -- steps 2-3 in SQL: direct extraction + placement derivation -------------
    def _assignment_table(self) -> str:
        """Materialize V once per analysis with a covering (m, s, d, v)
        index so every direct-extraction join is an index lookup."""
        name = f"V_{self.channels.name}"
        self.channels.to_table(self.db, name)
        self.db.create_index(name, ("m", "s", "d", "v"), name=name + "_msd")
        return name

    def _check_assignments_sql(self, spec: ControllerMessageSpec,
                               v_table: str) -> None:
        """Raise :class:`MissingAssignmentError` for the first message of
        ``spec``'s controller (row-major, input triple before outputs —
        the same order the Python loops visit) that has no entry in V."""
        it = spec.input_triple
        t = quote_ident(spec.controller.table_name)
        v = quote_ident(v_table)

        def branch(tri: MessageTriple, k: int, needs_input: bool) -> str:
            m, s, d = (quote_ident(tri.msg), quote_ident(tri.src),
                       quote_ident(tri.dst))
            conds = [f"t.{m} IS NOT NULL", f"t.{s} IS NOT NULL",
                     f"t.{d} IS NOT NULL", "x.v IS NULL"]
            if needs_input:
                conds = [
                    f"t.{quote_ident(it.msg)} IS NOT NULL",
                    f"t.{quote_ident(it.src)} IS NOT NULL",
                    f"t.{quote_ident(it.dst)} IS NOT NULL",
                ] + conds
            return (
                f"SELECT t.rowid AS r, {k} AS k, t.{m} AS m, t.{s} AS s, "
                f"t.{d} AS d FROM {t} t LEFT JOIN {v} x "
                f"ON x.m = t.{m} AND x.s = t.{s} AND x.d = t.{d} "
                f"WHERE {' AND '.join(conds)}"
            )

        branches = [branch(it, 0, needs_input=False)]
        for k, ot in enumerate(spec.output_triples, start=1):
            branches.append(branch(ot, k, needs_input=True))
        sql = ("SELECT m, s, d FROM (" + "\nUNION ALL\n".join(branches) +
               ") ORDER BY r, k LIMIT 1")
        missing = self.db.query(sql)
        if missing:
            r = missing[0]
            # lookup() raises with the exact message the Python path uses.
            self.channels.lookup(r["m"], r["s"], r["d"])
            raise MissingAssignmentError(
                f"V {self.channels.name!r} has no channel for message "
                f"{r['m']!r} from {r['s']!r} to {r['d']!r}"
            )

    def _direct_sql(self, spec: ControllerMessageSpec, v_table: str,
                    table: str) -> str:
        """INSERT…SELECT extracting ``spec``'s exact-placement dependency
        rows by joining the controller table against V twice.  The inner
        equality joins drop NULL message columns for free; ORDER BY keeps
        the Python path's row-major output order."""
        it = spec.input_triple
        t = quote_ident(spec.controller.table_name)
        v = quote_ident(v_table)
        branches = []
        for k, ot in enumerate(spec.output_triples):
            branches.append(
                f"SELECT t.rowid AS r, {k} AS k,\n"
                f"  t.{quote_ident(it.msg)} AS in_msg, "
                f"t.{quote_ident(it.src)} AS in_src, "
                f"t.{quote_ident(it.dst)} AS in_dst, vi.v AS in_vc,\n"
                f"  t.{quote_ident(ot.msg)} AS out_msg, "
                f"t.{quote_ident(ot.src)} AS out_src, "
                f"t.{quote_ident(ot.dst)} AS out_dst, vo.v AS out_vc,\n"
                f"  {quote_value(spec.name)} AS controller,\n"
                f"  {quote_value(Placement.ALL_DISTINCT.value)} AS placement,\n"
                f"  'direct' AS derived\n"
                f"FROM {t} t\n"
                f"JOIN {v} vi ON vi.m = t.{quote_ident(it.msg)} "
                f"AND vi.s = t.{quote_ident(it.src)} "
                f"AND vi.d = t.{quote_ident(it.dst)}\n"
                f"JOIN {v} vo ON vo.m = t.{quote_ident(ot.msg)} "
                f"AND vo.s = t.{quote_ident(ot.src)} "
                f"AND vo.d = t.{quote_ident(ot.dst)}"
            )
        cols = ", ".join(_DEP_COLUMNS)
        return (
            f"INSERT INTO {quote_ident(table)}\n"
            f"SELECT {cols} FROM (\n" + "\nUNION ALL\n".join(branches) +
            f"\n) ORDER BY r, k"
        )

    def _derive_sql(self, exact_table: str, placement: Placement,
                    table: str) -> str:
        """INSERT…SELECT deriving one placement's dependency table from
        the exact rows by CASE-substituting merged roles (channels
        unchanged — exactly how the paper rewrites R2 to R2')."""
        subs = [(a, b) for a, b in placement.substitution.items() if a != b]
        arms = " ".join(
            f"WHEN {quote_value(a)} THEN {quote_value(b)}" for a, b in subs
        )
        selected = []
        for c in _DEP_COLUMNS:
            q = quote_ident(c)
            if c == "placement":
                selected.append(quote_value(placement.value))
            elif subs and c in ("in_src", "in_dst", "out_src", "out_dst"):
                selected.append(f"CASE {q} {arms} ELSE {q} END")
            else:
                selected.append(q)
        return (
            f"INSERT INTO {quote_ident(table)} "
            f"SELECT {', '.join(selected)} FROM {quote_ident(exact_table)}"
        )

    # -- step 4: pairwise composition (in SQL, like the paper) ------------------
    def _materialize(self, rows: Iterable[DependencyRow], table: str) -> None:
        self.db.create_table_from_rows(
            table,
            _DEP_COLUMNS,
            [
                {c: getattr(r, c) for c in _DEP_COLUMNS}
                for r in rows
            ],
        )
        # The pairwise composition joins output assignments to input
        # assignments and dedups against existing rows; both are quadratic
        # without indexes (profiled: they dominate the whole analysis).
        for spec in _dep_index_specs(table):
            self.db.create_index(spec)

    def _dedicated_filter(self) -> str:
        """SQL filtering out compositions whose matched intermediate
        assignment rides a dedicated channel.

        A dedicated (unbounded) path cannot back-pressure its producer, so
        a wait chain never propagates through it — this is precisely why
        the paper's "dedicated hardware path ... for mread requests" fix
        removes the Figure 4 deadlock.
        """
        ded = sorted(self.channels.dedicated)
        if not ded:
            return ""
        vals = ", ".join("'" + d.replace("'", "''") + "'" for d in ded)
        return f"AND a.out_vc NOT IN ({vals})"

    def _compose_round_stmts(self, table: str, ignore_messages: bool,
                             closure: bool) -> list[str]:
        """Statements performing one composition round on ``table``.

        Row R of controller T1 composes with row S of controller T2 (same
        placement, different controllers) when R's output assignment
        matches S's input assignment; the result is (R.input, S.output).
        The closure variant composes any row with direct rows instead.

        Many controller rows carry identical message assignments, so each
        join side is first collapsed to its DISTINCT assignment rows in an
        indexed scratch table (1475 -> 240 rows on ASURA v5); the join
        then runs over the collapsed relations and the dedup index on
        ``table`` is probed once per distinct candidate.  The final
        content of ``table`` is identical to composing the raw rows.
        """
        t = quote_ident(table)
        msg_match = "" if ignore_messages else "AND a.out_msg IS b.in_msg"
        dedicated = self._dedicated_filter()
        assignment_cols = ("in_msg, in_src, in_dst, in_vc, "
                           "out_msg, out_src, out_dst, out_vc")
        cand = quote_ident(f"{table}__cand")
        cand_in = quote_ident(f"{table}__cand_in")
        stmts = [
            f"DROP TABLE IF EXISTS {cand}",
            f"CREATE TABLE {cand} AS SELECT DISTINCT {assignment_cols}, "
            f"controller, placement FROM {t} WHERE derived = 'direct'",
            f"CREATE INDEX {cand_in} ON {cand} "
            f"(placement, in_src, in_dst, in_vc)",
        ]
        if closure:
            # The a-side ranges over every row; its controller/derived
            # provenance is irrelevant (the result says 'closure').
            a_side = quote_ident(f"{table}__cand_any")
            tail = "'closure' AS controller, a.placement AS placement"
            pair = ""
            stmts += [
                f"DROP TABLE IF EXISTS {a_side}",
                f"CREATE TABLE {a_side} AS SELECT DISTINCT "
                f"{assignment_cols}, placement FROM {t}",
            ]
        else:
            a_side = cand
            tail = ("a.controller || '+' || b.controller AS controller, "
                    "a.placement AS placement")
            pair = "AND a.controller != b.controller"
        stmts.append(f"""
            INSERT INTO {t}
            SELECT * FROM (
                SELECT DISTINCT
                    a.in_msg AS in_msg, a.in_src AS in_src,
                    a.in_dst AS in_dst, a.in_vc AS in_vc,
                    b.out_msg AS out_msg, b.out_src AS out_src,
                    b.out_dst AS out_dst, b.out_vc AS out_vc,
                    {tail},
                    'composed' AS derived
                FROM {a_side} a JOIN {cand} b
                  ON a.placement = b.placement
                 {pair}
                 AND a.out_src IS b.in_src
                 AND a.out_dst IS b.in_dst
                 AND a.out_vc IS b.in_vc
                 {msg_match}
                 {dedicated}
            ) n
            WHERE NOT EXISTS (
                SELECT 1 FROM {t} c
                WHERE c.in_msg IS n.in_msg AND c.in_src IS n.in_src
                  AND c.in_dst IS n.in_dst AND c.in_vc IS n.in_vc
                  AND c.out_msg IS n.out_msg AND c.out_src IS n.out_src
                  AND c.out_dst IS n.out_dst AND c.out_vc IS n.out_vc
                  AND c.placement IS n.placement
            )
            """)
        stmts.append(f"DROP TABLE {cand}")
        if closure:
            stmts.append(f"DROP TABLE {a_side}")
        return stmts

    def _compose_pairwise_sql(self, table: str, ignore_messages: bool) -> int:
        """One round of pairwise composition, inserted back into ``table``.
        Returns the number of new rows added."""
        before = self.db.row_count(table)
        for stmt in self._compose_round_stmts(table, ignore_messages,
                                              closure=False):
            self.db.execute(stmt)
        added = self.db.row_count(table) - before
        get_tracer().incr("deadlock.compositions", added)
        return added

    def _compose_closure_sql(self, table: str, ignore_messages: bool) -> int:
        """Repeated composition to a fixpoint — the transitive closure the
        paper's footnote 2 tried and abandoned for its spurious cycles.
        Composes any row (direct or composed) with direct rows until no
        new dependencies appear."""
        stmts = self._compose_round_stmts(table, ignore_messages,
                                          closure=True)
        added_total = 0
        while True:
            before = self.db.row_count(table)
            for stmt in stmts:
                self.db.execute(stmt)
            added = self.db.row_count(table) - before
            get_tracer().incr("deadlock.compositions", added)
            added_total += added
            if added == 0:
                return added_total

    # -- parallel composition over snapshots -------------------------------------
    def _worker_compose(
        self,
        snapshot: bytes,
        placement: Placement,
        exact_table: str,
        ignore_messages: bool,
        closure: bool,
    ) -> tuple[list[tuple], int]:
        """One worker: derive ``placement``'s table inside a private
        deserialized copy of the database, compose it there, and return
        the finished rows.  Runs on a plain connection (no tracer — the
        tracer is not thread-safe) owned entirely by this thread."""
        conn = sqlite3.connect(":memory:")
        try:
            conn.deserialize(snapshot)
            cols = ", ".join(f"{quote_ident(c)} TEXT" for c in _DEP_COLUMNS)
            conn.execute(f"CREATE TABLE __w ({cols})")
            conn.execute(self._derive_sql(exact_table, placement, "__w"))
            for spec in _dep_index_specs("__w"):
                conn.execute(spec.sql())
            stmts = self._compose_round_stmts("__w", ignore_messages, closure)
            count = "SELECT COUNT(*) FROM __w"
            composed = 0
            while True:
                before = conn.execute(count).fetchone()[0]
                for stmt in stmts:
                    conn.execute(stmt)
                added = conn.execute(count).fetchone()[0] - before
                composed += added
                if added == 0 or not closure:
                    break
            rows = conn.execute(
                "SELECT " + ", ".join(_DEP_COLUMNS) + " FROM __w ORDER BY rowid"
            ).fetchall()
            return rows, composed
        finally:
            conn.close()

    def _compose_parallel(
        self,
        table: str,
        exact_table: str,
        placements: Sequence[Placement],
        ignore_messages: bool,
        closure: bool,
        workers: int,
    ) -> None:
        """Fan the placements out across snapshot workers, then collect
        their finished per-placement tables back into ``table`` (direct
        rows first, in placement order, matching the sequential layout)."""
        snapshot = self.db.snapshot()
        with ThreadPoolExecutor(max_workers=workers) as pool:
            results = list(pool.map(
                lambda p: self._worker_compose(
                    snapshot, p, exact_table, ignore_messages, closure),
                placements,
            ))
        derived_idx = _DEP_COLUMNS.index("derived")
        cols = ", ".join(quote_ident(c) for c in _DEP_COLUMNS)
        marks = ", ".join("?" for _ in _DEP_COLUMNS)
        insert = f"INSERT INTO {quote_ident(table)} ({cols}) VALUES ({marks})"
        composed_total = 0
        for rows, _ in results:
            self.db.executemany(
                insert, [r for r in rows if r[derived_idx] == "direct"])
        for rows, composed in results:
            self.db.executemany(
                insert, [r for r in rows if r[derived_idx] == "composed"])
            composed_total += composed
        get_tracer().incr("deadlock.compositions", composed_total)

    # -- the full pipeline -------------------------------------------------------
    def _analyze_python(
        self,
        table: str,
        placements: Sequence[Placement],
        ignore_messages: bool,
        closure: bool,
    ) -> list[DependencyRow]:
        """The original row-at-a-time pipeline (parity oracle)."""
        with span("deadlock.direct", assignment=self.channels.name,
                  engine="python"):
            exact: list[DependencyRow] = []
            for spec in self.specs:
                exact.extend(self.controller_dependency_rows(spec))

            all_rows: list[DependencyRow] = []
            for placement in placements:
                if placement is Placement.ALL_DISTINCT:
                    all_rows.extend(exact)
                else:
                    all_rows.extend(self.apply_placement(exact, placement))

        with span("deadlock.materialize", table=table, engine="python"):
            self._materialize(all_rows, table)
        with span("deadlock.compose", table=table, closure=closure):
            if closure:
                self._compose_closure_sql(table, ignore_messages)
            else:
                self._compose_pairwise_sql(table, ignore_messages)
        return [
            DependencyRow(**{c: r[c] for c in _DEP_COLUMNS})
            for r in self.db.rows(table)
        ]

    def _analyze_sql(
        self,
        table: str,
        placements: Sequence[Placement],
        ignore_messages: bool,
        closure: bool,
        workers: Optional[int],
    ) -> None:
        """The set-based pipeline: extraction, derivation and composition
        all happen inside the database."""
        if workers is None:
            workers = self.workers
        if workers is None:
            workers = min(len(placements), os.cpu_count() or 1)
        parallel = (workers > 1 and len(placements) > 1 and SNAPSHOT_SUPPORTED)

        exact = f"__exact_{table}"
        with span("deadlock.direct", assignment=self.channels.name,
                  engine="sql"):
            v_table = self._assignment_table()
            self.db.create_table(exact, _DEP_COLUMNS)
            for spec in self.specs:
                self._check_assignments_sql(spec, v_table)
                self.db.execute(self._direct_sql(spec, v_table, exact))

        with span("deadlock.materialize", table=table, engine="sql"):
            self.db.create_table(table, _DEP_COLUMNS)
            if not parallel:
                for placement in placements:
                    self.db.execute(self._derive_sql(exact, placement, table))
            for spec in _dep_index_specs(table):
                self.db.create_index(spec)

        with span("deadlock.compose", table=table, closure=closure,
                  parallel=parallel):
            if parallel:
                self._compose_parallel(table, exact, placements,
                                       ignore_messages, closure, workers)
            else:
                if closure:
                    self._compose_closure_sql(table, ignore_messages)
                else:
                    self._compose_pairwise_sql(table, ignore_messages)
        self.db.drop_table(exact)

    def analyze(
        self,
        placements: Sequence[Placement] = ALL_PLACEMENTS,
        ignore_messages: bool = True,
        closure: bool = False,
        table_name: Optional[str] = None,
        engine: Optional[str] = None,
        workers: Optional[int] = None,
    ) -> "DeadlockAnalysis":
        engine = engine or self.engine
        if engine not in ("sql", "python"):
            raise ValueError(f"unknown deadlock engine {engine!r}")
        table = table_name or f"pdt_{self.channels.name}"
        with span("deadlock.analyze", assignment=self.channels.name,
                  closure=closure, engine=engine) as sp:
            rows: Optional[list[DependencyRow]] = None
            edge_pairs: Optional[list[tuple[str, str]]] = None
            if engine == "python":
                rows = self._analyze_python(table, placements,
                                            ignore_messages, closure)
                n_rows = len(rows)
            else:
                self._analyze_sql(table, placements, ignore_messages,
                                  closure, workers)
                # Pull only the aggregates the VCG needs; the full rows
                # stay in the database until a witness report asks.
                n_rows = self.db.row_count(table)
                edge_pairs = [
                    (r["in_vc"], r["out_vc"])
                    for r in self.db.query(
                        f"SELECT DISTINCT in_vc, out_vc "
                        f"FROM {quote_ident(table)}"
                    )
                ]
        tracer = get_tracer()
        if tracer.enabled:
            tracer.gauge("deadlock.dependency_rows", n_rows)
        return DeadlockAnalysis(
            channels=self.channels,
            table_name=table,
            db=self.db,
            dependency_rows=rows,
            n_rows=n_rows,
            edge_pairs=edge_pairs,
            build_seconds=sp.seconds,
        )


class DeadlockAnalysis:
    """The protocol dependency table plus the VCG derived from it.

    The SQL engine leaves the dependency rows in the database and loads
    them only when something (a witness report, typically) first touches
    :attr:`dependency_rows`; the VCG and row count come from cheap
    aggregates captured at analysis time.  Rerunning ``analyze()`` with
    the same ``table_name`` replaces the underlying table, so pass
    distinct names (or touch ``dependency_rows`` first) when comparing
    two analyses of the same assignment.
    """

    def __init__(
        self,
        channels: ChannelAssignment,
        table_name: str,
        db: Optional[ProtocolDatabase] = None,
        dependency_rows: Optional[Sequence[DependencyRow]] = None,
        n_rows: Optional[int] = None,
        edge_pairs: Optional[Sequence[tuple[str, str]]] = None,
        build_seconds: float = 0.0,
    ) -> None:
        self.channels = channels
        self.table_name = table_name
        self.db = db
        self.build_seconds = build_seconds
        self._rows: Optional[list[DependencyRow]] = (
            list(dependency_rows) if dependency_rows is not None else None
        )
        if self._rows is None and db is None:
            raise ValueError(
                "DeadlockAnalysis needs dependency_rows or a db to load "
                "them from"
            )
        self._n_rows = n_rows if n_rows is not None else (
            len(self._rows) if self._rows is not None else None
        )
        self._edge_pairs = (
            list(edge_pairs) if edge_pairs is not None else None
        )
        self._vcg: Optional[nx.DiGraph] = None

    @property
    def dependency_rows(self) -> list[DependencyRow]:
        """Every row of the protocol dependency table (loaded from the
        database on first access when built by the SQL engine)."""
        if self._rows is None:
            cursor = self.db.execute(
                "SELECT " + ", ".join(_DEP_COLUMNS) +
                f" FROM {quote_ident(self.table_name)}"
            )
            cursor.row_factory = None  # plain tuples: DependencyRow(*row)
            self._rows = [DependencyRow(*r) for r in cursor.fetchall()]
            self._n_rows = len(self._rows)
        return self._rows

    @property
    def n_rows(self) -> int:
        """``len(dependency_rows)`` without forcing the row load."""
        if self._n_rows is None:
            self._n_rows = len(self.dependency_rows)
        return self._n_rows

    @property
    def vcg(self) -> nx.DiGraph:
        """The virtual channel dependency graph.  Dedicated channels are
        unbounded hardware paths and contribute no vertices or edges."""
        if self._vcg is None:
            g = nx.DiGraph()
            blocking = self.channels.blocking_channels()
            g.add_nodes_from(sorted(blocking))
            pairs = self._edge_pairs
            if pairs is None:
                pairs = {r.edge() for r in self.dependency_rows}
            for in_vc, out_vc in pairs:
                if in_vc in blocking and out_vc in blocking:
                    g.add_edge(in_vc, out_vc)
            self._vcg = g
        return self._vcg

    def edges(self) -> list[tuple[str, str]]:
        return sorted(self.vcg.edges())

    def cycles(self) -> list[tuple[str, ...]]:
        """All elementary cycles of the VCG, canonical and sorted."""
        return find_cycles_networkx(self.vcg.edges())

    def cyclic_channels(self) -> set[str]:
        return cyclic_vertices_networkx(self.vcg.edges())

    def cyclic_channels_sql(self) -> set[str]:
        """Pure-SQL recomputation of :meth:`cyclic_channels` (cross-check)."""
        return cyclic_vertices_sql(self.vcg.edges())

    def is_deadlock_free(self) -> bool:
        return not self.cyclic_channels()

    # -- witnesses ---------------------------------------------------------------
    def witnesses(
        self, cycle: Sequence[str], per_edge: int = 3
    ) -> dict[tuple[str, str], list[DependencyRow]]:
        """Dependency rows justifying each edge of a cycle, direct rows
        first (they point at concrete controller-table transitions)."""
        out: dict[tuple[str, str], list[DependencyRow]] = {}
        n = len(cycle)
        for i in range(n):
            edge = (cycle[i], cycle[(i + 1) % n])
            rows = [r for r in self.dependency_rows if r.edge() == edge]
            rows.sort(key=lambda r: (r.derived != "direct", r.placement))
            # Distinct assignments only: many controller rows share the
            # same message exchange and would repeat in the report.
            seen: set[tuple] = set()
            unique: list[DependencyRow] = []
            for r in rows:
                key = (r.in_msg, r.in_src, r.in_dst, r.out_msg, r.out_src,
                       r.out_dst, r.derived)
                if key not in seen:
                    seen.add(key)
                    unique.append(r)
            out[edge] = unique[:per_edge]
        return out

    def scenario(self, cycle: Sequence[str]) -> str:
        """A Figure-4-style narrative for one cycle."""
        lines = [f"Potential deadlock: cycle {' -> '.join(cycle)} -> {cycle[0]}"]
        for edge, rows in self.witnesses(cycle).items():
            lines.append(f"  {edge[0]} waits on {edge[1]}:")
            for r in rows:
                lines.append(
                    f"    processing {r.in_msg}({r.in_src}->{r.in_dst}) on "
                    f"{r.in_vc} requires emitting {r.out_msg}"
                    f"({r.out_src}->{r.out_dst}) on {r.out_vc} "
                    f"[{r.controller}, {r.placement}, {r.derived}]"
                )
        return "\n".join(lines)

    def report(self) -> Report:
        report = Report(f"deadlock analysis for V={self.channels.name}")
        cycles = self.cycles()
        get_tracer().gauge("deadlock.cycles", len(cycles))
        report.add(
            CheckResult(
                name="vcg-acyclic",
                passed=not cycles,
                description=(
                    f"{self.vcg.number_of_nodes()} channels, "
                    f"{self.vcg.number_of_edges()} dependencies, "
                    f"{len(cycles)} cycle(s)"
                ),
                details=[self.scenario(c) for c in cycles],
                seconds=self.build_seconds,
            )
        )
        return report
