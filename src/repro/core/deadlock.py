"""Static deadlock detection via virtual-channel dependency graphs
(paper sections 4.1–4.2).

Pipeline, following the paper step by step:

1. A **virtual channel assignment** ``V`` is a table ``(m, s, d, v)``:
   message ``m`` from source ``s`` to destination ``d`` travels on virtual
   channel ``v``.  Channels may be marked *dedicated* (the paper's fix for
   the Figure 4 deadlock adds "a dedicated hardware path from directory
   controller to the home memory controller for mread requests");
   dedicated channels are unbounded and excluded from the VCG.

2. For each controller table, an **individual controller dependency
   table** is built: one row per (incoming assignment, outgoing
   assignment) pair, i.e. processing message ``m1`` on ``vc1`` requires
   emitting ``m2`` on ``vc2``.

3. The exact tables correspond to the placement L!=H!=R; **four more
   sets** are derived for the other quad placements by substituting merged
   node roles in the source/destination fields.

4. Tables are composed **pairwise** within each placement (output
   assignment of one row matches input assignment of another; optionally
   ignoring messages, which captures transaction interleavings).  The
   union of everything is the **protocol dependency table**.

5. Every row contributes an edge ``in_vc -> out_vc`` to the **VCG**; a
   cycle is a potential deadlock and is reported with witness rows.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence

import networkx as nx

from ..telemetry import get_tracer, span

from ..analysis.cycles import (
    canonical_cycle,
    cyclic_vertices_networkx,
    cyclic_vertices_sql,
    find_cycles_networkx,
)
from .database import ProtocolDatabase
from .expr import Value
from .quad import ALL_PLACEMENTS, Placement
from .report import CheckResult, Report
from .sqlgen import quote_ident
from .table import ControllerTable

__all__ = [
    "VCAssignment",
    "ChannelAssignment",
    "MissingAssignmentError",
    "MessageTriple",
    "ControllerMessageSpec",
    "DependencyRow",
    "DeadlockAnalyzer",
    "DeadlockAnalysis",
]


class MissingAssignmentError(KeyError):
    """A controller row exchanges a message with no entry in V."""


@dataclass(frozen=True)
class VCAssignment:
    """One row of V: message ``m`` from ``s`` to ``d`` rides channel ``v``."""

    message: str
    src: str
    dst: str
    channel: str


class ChannelAssignment:
    """The paper's table V plus the set of dedicated (unbounded) channels."""

    def __init__(
        self,
        name: str,
        assignments: Iterable[VCAssignment],
        dedicated: Iterable[str] = (),
    ) -> None:
        self.name = name
        self.assignments = tuple(assignments)
        self.dedicated = frozenset(dedicated)
        self._index: dict[tuple[str, str, str], str] = {}
        for a in self.assignments:
            key = (a.message, a.src, a.dst)
            if key in self._index and self._index[key] != a.channel:
                raise ValueError(
                    f"V {name!r}: conflicting channels for {key}: "
                    f"{self._index[key]} vs {a.channel}"
                )
            self._index[key] = a.channel

    def lookup(self, message: str, src: str, dst: str) -> str:
        try:
            return self._index[(message, src, dst)]
        except KeyError:
            raise MissingAssignmentError(
                f"V {self.name!r} has no channel for message {message!r} "
                f"from {src!r} to {dst!r}"
            ) from None

    def channels(self) -> set[str]:
        return {a.channel for a in self.assignments}

    def blocking_channels(self) -> set[str]:
        """Channels that participate in the VCG (finite resources)."""
        return self.channels() - self.dedicated

    def to_table(self, db: ProtocolDatabase, table_name: Optional[str] = None) -> str:
        """Materialize V in the database with the paper's column names."""
        name = table_name or f"V_{self.name}"
        db.create_table_from_rows(
            name,
            ("m", "s", "d", "v"),
            [
                {"m": a.message, "s": a.src, "d": a.dst, "v": a.channel}
                for a in self.assignments
            ],
        )
        return name

    def reassigned(
        self,
        name: str,
        changes: Mapping[tuple[str, str, str], str],
        dedicated: Optional[Iterable[str]] = None,
    ) -> "ChannelAssignment":
        """A new assignment with some (m, s, d) entries moved to other
        channels — the paper's debugging loop 'resolved by modifying V'."""
        new = []
        for a in self.assignments:
            key = (a.message, a.src, a.dst)
            ch = changes.get(key, a.channel)
            new.append(VCAssignment(a.message, a.src, a.dst, ch))
        ded = self.dedicated if dedicated is None else frozenset(dedicated)
        return ChannelAssignment(name, new, ded)


@dataclass(frozen=True)
class MessageTriple:
    """The (message, source, destination) column triple of one message
    column of a controller table (paper section 2.1)."""

    msg: str
    src: str
    dst: str


@dataclass
class ControllerMessageSpec:
    """Which columns of a controller table carry messages.

    ``input_triple`` names the incoming-message columns; each entry of
    ``output_triples`` names one outgoing-message column group.
    """

    controller: ControllerTable
    input_triple: MessageTriple
    output_triples: tuple[MessageTriple, ...]

    @property
    def name(self) -> str:
        return self.controller.schema.name


@dataclass(frozen=True)
class DependencyRow:
    """One row of a dependency table: input assignment, output assignment,
    plus provenance for witness reports."""

    in_msg: str
    in_src: str
    in_dst: str
    in_vc: str
    out_msg: str
    out_src: str
    out_dst: str
    out_vc: str
    controller: str
    placement: str
    derived: str  # 'direct' or 'composed'

    def edge(self) -> tuple[str, str]:
        return (self.in_vc, self.out_vc)

    def __str__(self) -> str:
        return (
            f"({self.in_msg}, {self.in_src}, {self.in_dst}, {self.in_vc} | "
            f"{self.out_msg}, {self.out_src}, {self.out_dst}, {self.out_vc}) "
            f"[{self.controller}, {self.placement}, {self.derived}]"
        )


_DEP_COLUMNS = (
    "in_msg",
    "in_src",
    "in_dst",
    "in_vc",
    "out_msg",
    "out_src",
    "out_dst",
    "out_vc",
    "controller",
    "placement",
    "derived",
)


class DeadlockAnalyzer:
    """Builds the protocol dependency table and the VCG for one channel
    assignment over a set of controller tables."""

    def __init__(
        self,
        db: ProtocolDatabase,
        specs: Sequence[ControllerMessageSpec],
        channels: ChannelAssignment,
    ) -> None:
        self.db = db
        self.specs = tuple(specs)
        self.channels = channels

    # -- step 2: individual controller dependency tables -----------------------
    def controller_dependency_rows(
        self, spec: ControllerMessageSpec
    ) -> list[DependencyRow]:
        """Exact-placement (L!=H!=R) dependency rows for one controller."""
        rows: list[DependencyRow] = []
        it = spec.input_triple
        for row in spec.controller.rows():
            m1, s1, d1 = row[it.msg], row[it.src], row[it.dst]
            if m1 is None:
                continue
            if s1 is None or d1 is None:
                continue
            v1 = self.channels.lookup(m1, s1, d1)
            for ot in spec.output_triples:
                m2, s2, d2 = row[ot.msg], row[ot.src], row[ot.dst]
                if m2 is None:
                    continue
                if s2 is None or d2 is None:
                    continue
                v2 = self.channels.lookup(m2, s2, d2)
                rows.append(
                    DependencyRow(
                        m1, s1, d1, v1, m2, s2, d2, v2,
                        controller=spec.name,
                        placement=Placement.ALL_DISTINCT.value,
                        derived="direct",
                    )
                )
        return rows

    @staticmethod
    def apply_placement(
        rows: Iterable[DependencyRow], placement: Placement
    ) -> list[DependencyRow]:
        """Derive a placement's dependency table by substituting merged
        node roles in the source/destination fields (channels unchanged —
        exactly how the paper rewrites R2 to R2')."""
        out = []
        for r in rows:
            out.append(
                DependencyRow(
                    r.in_msg,
                    placement.apply(r.in_src),
                    placement.apply(r.in_dst),
                    r.in_vc,
                    r.out_msg,
                    placement.apply(r.out_src),
                    placement.apply(r.out_dst),
                    r.out_vc,
                    controller=r.controller,
                    placement=placement.value,
                    derived="direct",
                )
            )
        return out

    # -- step 4: pairwise composition (in SQL, like the paper) ------------------
    def _materialize(self, rows: Iterable[DependencyRow], table: str) -> None:
        self.db.create_table_from_rows(
            table,
            _DEP_COLUMNS,
            [
                {c: getattr(r, c) for c in _DEP_COLUMNS}
                for r in rows
            ],
        )
        # The pairwise composition joins output assignments to input
        # assignments and dedups with a correlated NOT EXISTS; both are
        # quadratic without indexes (profiled: they dominate the whole
        # analysis).
        t = quote_ident(table)
        self.db.execute(
            f"CREATE INDEX IF NOT EXISTS {quote_ident(table + '_in')} "
            f"ON {t} (placement, derived, in_src, in_dst, in_vc)"
        )
        self.db.execute(
            f"CREATE INDEX IF NOT EXISTS {quote_ident(table + '_dedup')} "
            f"ON {t} (placement, in_msg, in_vc, out_msg, out_vc)"
        )

    def _dedicated_filter(self) -> str:
        """SQL filtering out compositions whose matched intermediate
        assignment rides a dedicated channel.

        A dedicated (unbounded) path cannot back-pressure its producer, so
        a wait chain never propagates through it — this is precisely why
        the paper's "dedicated hardware path ... for mread requests" fix
        removes the Figure 4 deadlock.
        """
        ded = sorted(self.channels.dedicated)
        if not ded:
            return ""
        vals = ", ".join("'" + d.replace("'", "''") + "'" for d in ded)
        return f"AND a.out_vc NOT IN ({vals})"

    def _compose_pairwise_sql(self, table: str, ignore_messages: bool) -> int:
        """One round of pairwise composition, inserted back into ``table``.

        Row R of controller T1 composes with row S of controller T2 (same
        placement, different controllers) when R's output assignment
        matches S's input assignment; the result is (R.input, S.output).
        Returns the number of new rows added.
        """
        t = quote_ident(table)
        msg_match = "" if ignore_messages else "AND a.out_msg IS b.in_msg"
        dedicated = self._dedicated_filter()
        before = self.db.row_count(table)
        self.db.execute(
            f"""
            INSERT INTO {t}
            SELECT DISTINCT
                a.in_msg, a.in_src, a.in_dst, a.in_vc,
                b.out_msg, b.out_src, b.out_dst, b.out_vc,
                a.controller || '+' || b.controller,
                a.placement,
                'composed'
            FROM {t} a JOIN {t} b
              ON a.placement = b.placement
             AND a.derived = 'direct' AND b.derived = 'direct'
             AND a.controller != b.controller
             AND a.out_src IS b.in_src
             AND a.out_dst IS b.in_dst
             AND a.out_vc IS b.in_vc
             {msg_match}
             {dedicated}
            WHERE NOT EXISTS (
                SELECT 1 FROM {t} c
                WHERE c.in_msg IS a.in_msg AND c.in_src IS a.in_src
                  AND c.in_dst IS a.in_dst AND c.in_vc IS a.in_vc
                  AND c.out_msg IS b.out_msg AND c.out_src IS b.out_src
                  AND c.out_dst IS b.out_dst AND c.out_vc IS b.out_vc
                  AND c.placement IS a.placement
            )
            """
        )
        added = self.db.row_count(table) - before
        get_tracer().incr("deadlock.compositions", added)
        return added

    def _compose_closure_sql(self, table: str, ignore_messages: bool) -> int:
        """Repeated composition to a fixpoint — the transitive closure the
        paper's footnote 2 tried and abandoned for its spurious cycles.
        Composes any row (direct or composed) with direct rows until no
        new dependencies appear."""
        t = quote_ident(table)
        msg_match = "" if ignore_messages else "AND a.out_msg IS b.in_msg"
        dedicated = self._dedicated_filter()
        added_total = 0
        while True:
            before = self.db.row_count(table)
            self.db.execute(
                f"""
                INSERT INTO {t}
                SELECT DISTINCT
                    a.in_msg, a.in_src, a.in_dst, a.in_vc,
                    b.out_msg, b.out_src, b.out_dst, b.out_vc,
                    'closure', a.placement, 'composed'
                FROM {t} a JOIN {t} b
                  ON a.placement = b.placement
                 AND b.derived = 'direct'
                 AND a.out_src IS b.in_src
                 AND a.out_dst IS b.in_dst
                 AND a.out_vc IS b.in_vc
                 {msg_match}
                 {dedicated}
                WHERE NOT EXISTS (
                    SELECT 1 FROM {t} c
                    WHERE c.in_msg IS a.in_msg AND c.in_src IS a.in_src
                      AND c.in_dst IS a.in_dst AND c.in_vc IS a.in_vc
                      AND c.out_msg IS b.out_msg AND c.out_src IS b.out_src
                      AND c.out_dst IS b.out_dst AND c.out_vc IS b.out_vc
                      AND c.placement IS a.placement
                )
                """
            )
            added = self.db.row_count(table) - before
            get_tracer().incr("deadlock.compositions", added)
            added_total += added
            if added == 0:
                return added_total

    # -- the full pipeline -------------------------------------------------------
    def analyze(
        self,
        placements: Sequence[Placement] = ALL_PLACEMENTS,
        ignore_messages: bool = True,
        closure: bool = False,
        table_name: Optional[str] = None,
    ) -> "DeadlockAnalysis":
        with span("deadlock.analyze", assignment=self.channels.name,
                  closure=closure) as sp:
            with span("deadlock.direct", assignment=self.channels.name):
                exact: list[DependencyRow] = []
                for spec in self.specs:
                    exact.extend(self.controller_dependency_rows(spec))

                all_rows: list[DependencyRow] = []
                for placement in placements:
                    if placement is Placement.ALL_DISTINCT:
                        all_rows.extend(exact)
                    else:
                        all_rows.extend(self.apply_placement(exact, placement))

            table = table_name or f"pdt_{self.channels.name}"
            with span("deadlock.materialize", table=table):
                self._materialize(all_rows, table)
            with span("deadlock.compose", table=table, closure=closure):
                if closure:
                    self._compose_closure_sql(table, ignore_messages)
                else:
                    self._compose_pairwise_sql(table, ignore_messages)

            rows = [
                DependencyRow(**{c: r[c] for c in _DEP_COLUMNS})
                for r in self.db.rows(table)
            ]
        tracer = get_tracer()
        if tracer.enabled:
            tracer.gauge("deadlock.dependency_rows", len(rows))
        return DeadlockAnalysis(
            channels=self.channels,
            dependency_rows=rows,
            table_name=table,
            build_seconds=sp.seconds,
        )


@dataclass
class DeadlockAnalysis:
    """The protocol dependency table plus the VCG derived from it."""

    channels: ChannelAssignment
    dependency_rows: list[DependencyRow]
    table_name: str
    build_seconds: float = 0.0
    _vcg: Optional[nx.DiGraph] = field(default=None, repr=False)

    @property
    def vcg(self) -> nx.DiGraph:
        """The virtual channel dependency graph.  Dedicated channels are
        unbounded hardware paths and contribute no vertices or edges."""
        if self._vcg is None:
            g = nx.DiGraph()
            blocking = self.channels.blocking_channels()
            g.add_nodes_from(sorted(blocking))
            for r in self.dependency_rows:
                if r.in_vc in blocking and r.out_vc in blocking:
                    g.add_edge(r.in_vc, r.out_vc)
            self._vcg = g
        return self._vcg

    def edges(self) -> list[tuple[str, str]]:
        return sorted(self.vcg.edges())

    def cycles(self) -> list[tuple[str, ...]]:
        """All elementary cycles of the VCG, canonical and sorted."""
        return find_cycles_networkx(self.vcg.edges())

    def cyclic_channels(self) -> set[str]:
        return cyclic_vertices_networkx(self.vcg.edges())

    def cyclic_channels_sql(self) -> set[str]:
        """Pure-SQL recomputation of :meth:`cyclic_channels` (cross-check)."""
        return cyclic_vertices_sql(self.vcg.edges())

    def is_deadlock_free(self) -> bool:
        return not self.cyclic_channels()

    # -- witnesses ---------------------------------------------------------------
    def witnesses(
        self, cycle: Sequence[str], per_edge: int = 3
    ) -> dict[tuple[str, str], list[DependencyRow]]:
        """Dependency rows justifying each edge of a cycle, direct rows
        first (they point at concrete controller-table transitions)."""
        out: dict[tuple[str, str], list[DependencyRow]] = {}
        n = len(cycle)
        for i in range(n):
            edge = (cycle[i], cycle[(i + 1) % n])
            rows = [r for r in self.dependency_rows if r.edge() == edge]
            rows.sort(key=lambda r: (r.derived != "direct", r.placement))
            # Distinct assignments only: many controller rows share the
            # same message exchange and would repeat in the report.
            seen: set[tuple] = set()
            unique: list[DependencyRow] = []
            for r in rows:
                key = (r.in_msg, r.in_src, r.in_dst, r.out_msg, r.out_src,
                       r.out_dst, r.derived)
                if key not in seen:
                    seen.add(key)
                    unique.append(r)
            out[edge] = unique[:per_edge]
        return out

    def scenario(self, cycle: Sequence[str]) -> str:
        """A Figure-4-style narrative for one cycle."""
        lines = [f"Potential deadlock: cycle {' -> '.join(cycle)} -> {cycle[0]}"]
        for edge, rows in self.witnesses(cycle).items():
            lines.append(f"  {edge[0]} waits on {edge[1]}:")
            for r in rows:
                lines.append(
                    f"    processing {r.in_msg}({r.in_src}->{r.in_dst}) on "
                    f"{r.in_vc} requires emitting {r.out_msg}"
                    f"({r.out_src}->{r.out_dst}) on {r.out_vc} "
                    f"[{r.controller}, {r.placement}, {r.derived}]"
                )
        return "\n".join(lines)

    def report(self) -> Report:
        report = Report(f"deadlock analysis for V={self.channels.name}")
        cycles = self.cycles()
        get_tracer().gauge("deadlock.cycles", len(cycles))
        report.add(
            CheckResult(
                name="vcg-acyclic",
                passed=not cycles,
                description=(
                    f"{self.vcg.number_of_nodes()} channels, "
                    f"{self.vcg.number_of_edges()} dependencies, "
                    f"{len(cycles)} cycle(s)"
                ),
                details=[self.scenario(c) for c in cycles],
                seconds=self.build_seconds,
            )
        )
        return report
