"""Compile constraint expressions to SQLite SQL.

The compilation target is a boolean SQL expression usable in a ``WHERE``
clause.  NULL handling follows the paper's dontcare/noop semantics: the
AST's ``Eq`` is *NULL-safe*, so it compiles to SQLite's ``IS`` operator
(``x IS y`` is true when both are NULL, unlike ``x = y``).  Set membership
expands into an ``IS``-disjunction for the same reason.

Column references may be qualified (``alias.column``) so the same
expression can be compiled against a bare table or a join.
"""

from __future__ import annotations

from typing import Optional

from .expr import (
    And,
    BoolExpr,
    Col,
    Eq,
    Expr,
    FalseExpr,
    In,
    Lit,
    Ne,
    Not,
    NotIn,
    Or,
    Ternary,
    TrueExpr,
    Value,
    ValueExpr,
)

__all__ = ["to_sql", "quote_value", "quote_ident", "SqlCompileError"]


class SqlCompileError(TypeError):
    """Raised when an expression node has no SQL translation."""


def quote_value(value: Value) -> str:
    """Render a literal as a SQL token; ``None`` becomes ``NULL``."""
    if value is None:
        return "NULL"
    return "'" + value.replace("'", "''") + "'"


def quote_ident(name: str) -> str:
    """Render an identifier (column/table name) double-quoted."""
    return '"' + name.replace('"', '""') + '"'


def _value_sql(e: ValueExpr, qualifier: Optional[str]) -> str:
    if isinstance(e, Col):
        ident = quote_ident(e.name)
        return f"{qualifier}.{ident}" if qualifier else ident
    if isinstance(e, Lit):
        return quote_value(e.value)
    raise SqlCompileError(f"cannot compile value expression {e!r}")


def _membership_sql(
    operand: ValueExpr, values: tuple[Value, ...], qualifier: Optional[str], negate: bool
) -> str:
    if not values:
        # Membership in the empty set is vacuously false.
        return "(1 = 0)" if not negate else "(1 = 1)"
    lhs = _value_sql(operand, qualifier)
    parts = [f"{lhs} IS {quote_value(v)}" for v in values]
    joined = " OR ".join(parts)
    return f"(NOT ({joined}))" if negate else f"({joined})"


def to_sql(expr: Expr, qualifier: Optional[str] = None) -> str:
    """Compile a boolean expression AST to a SQLite boolean expression.

    ``qualifier`` prefixes every column reference (e.g. the alias of the
    table in a join).  The result is always parenthesized so it can be
    dropped into a larger expression.
    """
    if isinstance(expr, TrueExpr):
        return "(1 = 1)"
    if isinstance(expr, FalseExpr):
        return "(1 = 0)"
    if isinstance(expr, Eq):
        return f"({_value_sql(expr.left, qualifier)} IS {_value_sql(expr.right, qualifier)})"
    if isinstance(expr, Ne):
        return f"({_value_sql(expr.left, qualifier)} IS NOT {_value_sql(expr.right, qualifier)})"
    if isinstance(expr, In):
        return _membership_sql(expr.operand, expr.values, qualifier, negate=False)
    if isinstance(expr, NotIn):
        return _membership_sql(expr.operand, expr.values, qualifier, negate=True)
    if isinstance(expr, And):
        return "(" + " AND ".join(to_sql(op, qualifier) for op in expr.operands) + ")"
    if isinstance(expr, Or):
        return "(" + " OR ".join(to_sql(op, qualifier) for op in expr.operands) + ")"
    if isinstance(expr, Not):
        return f"(NOT {to_sql(expr.operand, qualifier)})"
    if isinstance(expr, Ternary):
        # Compile a ternary *chain* (the paper's nested
        # cond?expr:cond?expr:... constraints) into a single flat
        # CASE WHEN: semantically identical and, unlike nested boolean
        # expansion, immune to SQLite's parser stack depth limit.
        arms = []
        node: Expr = expr
        while isinstance(node, Ternary):
            c = to_sql(node.condition, qualifier)
            t = to_sql(node.if_true, qualifier)
            arms.append(f"WHEN {c} THEN {t}")
            node = node.if_false
        default = to_sql(node, qualifier)
        return "(CASE " + " ".join(arms) + f" ELSE {default} END)"
    if isinstance(expr, BoolExpr):
        raise SqlCompileError(f"no SQL translation for boolean node {type(expr).__name__}")
    raise SqlCompileError(f"expected a boolean expression, got {expr!r}")
