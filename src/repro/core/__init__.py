"""Core library: the paper's SQL-based table-driven protocol methodology.

Public surface:

* expression language: :mod:`repro.core.expr` (``C``, ``when``, ``cases``)
* schemas and tables: :mod:`repro.core.schema`, :mod:`repro.core.table`
* the central database: :mod:`repro.core.database`
* constraint solving / table generation: :mod:`repro.core.generator`
* static checks: :mod:`repro.core.invariants`, :mod:`repro.core.deadlock`
* hardware mapping: :mod:`repro.core.mapping`, :mod:`repro.core.codegen`
"""

from .constraints import ColumnConstraint, ConstraintError, ConstraintSet
from .database import DatabaseError, ProtocolDatabase
from .deadlock import (
    ChannelAssignment,
    ControllerMessageSpec,
    DeadlockAnalysis,
    DeadlockAnalyzer,
    DependencyRow,
    MessageTriple,
    MissingAssignmentError,
    VCAssignment,
)
from .expr import C, FALSE, TRUE, cases, lit, when
from .generator import GenerationBudgetError, GenerationResult, TableGenerator
from .invariants import Invariant, InvariantChecker, InvariantViolation
from .mapping import (
    ExtensionSpec,
    ImplementationMapper,
    MappingError,
    PartitionSpec,
    ReconstructionBranch,
    ReconstructionPlan,
)
from .codegen import compile_python, generate_python, generate_verilog
from .quad import ALL_PLACEMENTS, NodeRole, Placement
from .report import CheckResult, Report, Severity
from .schema import Column, Role, SchemaError, TableSchema
from .table import AmbiguousMatchError, ControllerTable, NoMatchError

__all__ = [
    "C", "TRUE", "FALSE", "cases", "lit", "when",
    "Column", "Role", "SchemaError", "TableSchema",
    "ColumnConstraint", "ConstraintError", "ConstraintSet",
    "DatabaseError", "ProtocolDatabase",
    "GenerationBudgetError", "GenerationResult", "TableGenerator",
    "AmbiguousMatchError", "ControllerTable", "NoMatchError",
    "Invariant", "InvariantChecker", "InvariantViolation",
    "ChannelAssignment", "ControllerMessageSpec", "DeadlockAnalysis",
    "DeadlockAnalyzer", "DependencyRow", "MessageTriple",
    "MissingAssignmentError", "VCAssignment",
    "ExtensionSpec", "ImplementationMapper", "MappingError",
    "PartitionSpec", "ReconstructionBranch", "ReconstructionPlan",
    "compile_python", "generate_python", "generate_verilog",
    "ALL_PLACEMENTS", "NodeRole", "Placement",
    "CheckResult", "Report", "Severity",
]

from .revision import RevisionLog, TableDiff, diff_tables

__all__ += ["RevisionLog", "TableDiff", "diff_tables"]

from .repair import DeadlockRepairer, Fix, RepairResult

__all__ += ["DeadlockRepairer", "Fix", "RepairResult"]
