"""Protocol invariant checking (paper section 4.3).

Paper form: ``[Select cols from D where <bad-combination>] = empty`` — an
invariant holds when the query selecting its violating rows returns
nothing.  An :class:`Invariant` carries that violation condition either as
a constraint expression over one controller table's columns or as a raw
SQL query (for invariants spanning several tables).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from ..telemetry import get_tracer, span
from .database import ProtocolDatabase
from .expr import BoolExpr
from .report import CheckResult, Report
from .sqlgen import quote_ident, to_sql
from .table import ControllerTable

__all__ = ["Invariant", "InvariantChecker", "InvariantViolation"]


@dataclass
class InvariantViolation:
    invariant: str
    row: dict

    def __str__(self) -> str:
        pretty = ", ".join(f"{k}={v}" for k, v in self.row.items())
        return f"{self.invariant}: {pretty}"


@dataclass(frozen=True)
class Invariant:
    """A protocol invariant, stated as its violation condition.

    Exactly one of ``violation`` (expression over ``table``'s columns) or
    ``violation_sql`` (full SELECT returning violating rows, possibly
    joining several tables) must be given.
    """

    name: str
    description: str
    table: Optional[str] = None
    violation: Optional[BoolExpr] = None
    violation_sql: Optional[str] = None
    report_columns: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if (self.violation is None) == (self.violation_sql is None):
            raise ValueError(
                f"invariant {self.name!r}: give exactly one of violation / violation_sql"
            )
        if self.violation is not None and self.table is None:
            raise ValueError(
                f"invariant {self.name!r}: expression invariants need a table"
            )

    def query(self) -> str:
        """The SELECT returning this invariant's violating rows."""
        if self.violation_sql is not None:
            return self.violation_sql
        if self.report_columns:
            cols = ", ".join(quote_ident(c) for c in self.report_columns)
        else:
            cols = "*"
        return (
            f"SELECT {cols} FROM {quote_ident(self.table)} "
            f"WHERE {to_sql(self.violation)}"
        )


class InvariantChecker:
    """Runs invariants against the central database."""

    def __init__(self, db: ProtocolDatabase) -> None:
        self.db = db
        self.invariants: list[Invariant] = []

    def add(self, invariant: Invariant) -> None:
        self.invariants.append(invariant)

    def extend(self, invariants: Sequence[Invariant]) -> None:
        self.invariants.extend(invariants)

    def check(self, invariant: Invariant, max_violations: int = 50) -> CheckResult:
        with span("invariant.check", invariant=invariant.name) as sp:
            rows = self.db.query(invariant.query())
        tracer = get_tracer()
        if tracer.enabled:
            tracer.incr("invariant.checks")
            tracer.incr("invariant.passed" if not rows else "invariant.failed")
            if rows:
                tracer.incr("invariant.violations", len(rows))
        details = [
            InvariantViolation(invariant.name, r) for r in rows[:max_violations]
        ]
        return CheckResult(
            name=invariant.name,
            passed=not rows,
            description=invariant.description,
            details=details,
            seconds=sp.seconds,
        )

    def check_all(self, title: str = "protocol invariants") -> Report:
        report = Report(title)
        for inv in self.invariants:
            report.add(self.check(inv))
        return report

    def check_table(self, table: ControllerTable, title: Optional[str] = None) -> Report:
        """Run only the invariants that target ``table``."""
        report = Report(title or f"invariants on {table.schema.name}")
        for inv in self.invariants:
            if inv.table == table.table_name or inv.table == table.schema.name:
                report.add(self.check(inv))
        return report
