"""Protocol invariant checking (paper section 4.3).

Paper form: ``[Select cols from D where <bad-combination>] = empty`` — an
invariant holds when the query selecting its violating rows returns
nothing.  An :class:`Invariant` carries that violation condition either as
a constraint expression over one controller table's columns or as a raw
SQL query (for invariants spanning several tables).

Two execution strategies:

* **per-invariant** — one SELECT per invariant, the paper's literal form.
* **batched** (default for :meth:`InvariantChecker.check_all`) — every
  expression invariant is compiled into one branch of a single
  ``UNION ALL`` query tagged with the invariant's identity, so a whole
  sweep costs a handful of database round trips instead of one per
  invariant.  Branches are padded to a common width with NULLs so
  invariants over different tables batch together; violating rows are
  projected back to each invariant's own columns afterwards, which makes
  the two strategies produce identical :class:`~repro.core.report.Report`
  contents.  Raw-SQL invariants keep their private queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from ..telemetry import get_tracer, span
from .database import DatabaseError, ProtocolDatabase
from .expr import BoolExpr
from .report import CheckResult, Report
from .sqlgen import quote_ident, quote_value, to_sql
from .table import ControllerTable

__all__ = ["Invariant", "InvariantChecker", "InvariantViolation"]

#: compound-SELECT branches per batched query, comfortably below
#: SQLite's default 500-term compound limit.
MAX_BATCH_BRANCHES = 100


@dataclass
class InvariantViolation:
    invariant: str
    row: dict

    def __str__(self) -> str:
        pretty = ", ".join(f"{k}={v}" for k, v in self.row.items())
        return f"{self.invariant}: {pretty}"


@dataclass(frozen=True)
class Invariant:
    """A protocol invariant, stated as its violation condition.

    Exactly one of ``violation`` (expression over ``table``'s columns) or
    ``violation_sql`` (full SELECT returning violating rows, possibly
    joining several tables) must be given.
    """

    name: str
    description: str
    table: Optional[str] = None
    violation: Optional[BoolExpr] = None
    violation_sql: Optional[str] = None
    report_columns: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if (self.violation is None) == (self.violation_sql is None):
            raise ValueError(
                f"invariant {self.name!r}: give exactly one of violation / violation_sql"
            )
        if self.violation is not None and self.table is None:
            raise ValueError(
                f"invariant {self.name!r}: expression invariants need a table"
            )

    def query(self) -> str:
        """The SELECT returning this invariant's violating rows."""
        if self.violation_sql is not None:
            return self.violation_sql
        if self.report_columns:
            cols = ", ".join(quote_ident(c) for c in self.report_columns)
        else:
            cols = "*"
        return (
            f"SELECT {cols} FROM {quote_ident(self.table)} "
            f"WHERE {to_sql(self.violation)}"
        )


class InvariantChecker:
    """Runs invariants against the central database.

    ``batch=True`` (the default) lets :meth:`check_all` /
    :meth:`check_table` compile expression invariants into combined
    ``UNION ALL`` sweeps; ``batch=False`` is the escape hatch that
    restores the one-query-per-invariant behaviour everywhere.
    """

    def __init__(self, db: ProtocolDatabase, batch: bool = True) -> None:
        self.db = db
        self.batch = batch
        self.invariants: list[Invariant] = []
        # violation_sql -> output column names (None = not batchable),
        # probed once with a LIMIT 0 prepare; purely schema-dependent.
        self._sql_columns: dict[str, Optional[list[str]]] = {}

    def add(self, invariant: Invariant) -> None:
        self.invariants.append(invariant)

    def extend(self, invariants: Sequence[Invariant]) -> None:
        self.invariants.extend(invariants)

    def check(self, invariant: Invariant, max_violations: int = 50) -> CheckResult:
        with span("invariant.check", invariant=invariant.name) as sp:
            rows = self.db.query(invariant.query())
        self._tally(rows)
        details = [
            InvariantViolation(invariant.name, r) for r in rows[:max_violations]
        ]
        return CheckResult(
            name=invariant.name,
            passed=not rows,
            description=invariant.description,
            details=details,
            seconds=sp.seconds,
        )

    # -- batched sweeps ---------------------------------------------------------
    @staticmethod
    def _tally(rows: Sequence) -> None:
        tracer = get_tracer()
        if tracer.enabled:
            tracer.incr("invariant.checks")
            tracer.incr("invariant.passed" if not rows else "invariant.failed")
            if rows:
                tracer.incr("invariant.violations", len(rows))

    def _violation_columns(self, inv: Invariant) -> Optional[list[str]]:
        """The columns a violating row of ``inv`` reports (``SELECT *``
        order when no explicit report columns are given), or None when
        the invariant cannot join a batch."""
        if inv.violation is not None:
            if inv.report_columns:
                return list(inv.report_columns)
            return self.db.table_columns(inv.table)
        sql = inv.violation_sql
        if sql not in self._sql_columns:
            try:
                cursor = self.db.execute(
                    f'SELECT * FROM ({sql}) AS "__probe__" LIMIT 0'
                )
                cols = [d[0] for d in cursor.description]
            except DatabaseError:
                cols = None  # query shape does not nest; run it standalone
            if cols is not None and len(set(cols)) != len(cols):
                cols = None  # ambiguous duplicate output names
            self._sql_columns[sql] = cols
        return self._sql_columns[sql]

    def _batch_sql(self, chunk: Sequence[tuple[int, Invariant, list[str]]], width: int) -> str:
        """One UNION ALL query over ``chunk``; every branch is padded to
        ``width`` value columns and tagged with the invariant's index."""
        branches = []
        for idx, inv, cols in chunk:
            if inv.violation is not None:
                source = quote_ident(inv.table)
                where = f" WHERE {to_sql(inv.violation)}"
            else:
                source = f"({inv.violation_sql}) AS \"__b{idx}__\""
                where = ""
            selected = [f"{quote_value(str(idx))} AS \"__invariant__\""]
            for i in range(width):
                value = quote_ident(cols[i]) if i < len(cols) else "NULL"
                selected.append(f"{value} AS \"v{i}\"")
            branches.append(
                f"SELECT {', '.join(selected)} FROM {source}{where}"
            )
        return "\nUNION ALL\n".join(branches)

    def _check_batched(
        self, invariants: Sequence[Invariant], max_violations: int = 50
    ) -> list[CheckResult]:
        """Check ``invariants`` with batched UNION ALL sweeps, returning
        results in input order and identical in content to the
        per-invariant path (raw-SQL invariants still run individually)."""
        batchable = []
        for idx, inv in enumerate(invariants):
            cols = self._violation_columns(inv)
            if cols is not None:
                batchable.append((idx, inv, cols))
        violations: dict[int, list[dict]] = {idx: [] for idx, _, _ in batchable}
        seconds: dict[int, float] = {}
        tracer = get_tracer()
        for start in range(0, len(batchable), MAX_BATCH_BRANCHES):
            chunk = batchable[start:start + MAX_BATCH_BRANCHES]
            width = max(len(cols) for _, _, cols in chunk)
            sql = self._batch_sql(chunk, width)
            with span("invariant.check_batch", invariants=len(chunk)) as sp:
                rows = self.db.query(sql)
            if tracer.enabled:
                tracer.incr("invariant.batches")
                tracer.incr("invariant.batched", len(chunk))
            for r in rows:
                violations[int(r["__invariant__"])].append(r)
            # Attribute the sweep's wall time evenly across its branches
            # so Report.total_seconds still sums to real time spent.
            share = sp.seconds / len(chunk)
            for idx, _, _ in chunk:
                seconds[idx] = share

        columns_of = {idx: cols for idx, _, cols in batchable}
        results: list[CheckResult] = []
        for idx, inv in enumerate(invariants):
            if idx not in columns_of:
                results.append(self.check(inv, max_violations))
                continue
            cols = columns_of[idx]
            rows = [
                {c: r[f"v{i}"] for i, c in enumerate(cols)}
                for r in violations[idx]
            ]
            self._tally(rows)
            results.append(CheckResult(
                name=inv.name,
                passed=not rows,
                description=inv.description,
                details=[
                    InvariantViolation(inv.name, r)
                    for r in rows[:max_violations]
                ],
                seconds=seconds[idx],
            ))
        return results

    def _sweep(self, invariants: Sequence[Invariant], batch: Optional[bool]) -> list[CheckResult]:
        use_batch = self.batch if batch is None else batch
        if use_batch and invariants:
            return self._check_batched(invariants)
        return [self.check(inv) for inv in invariants]

    def check_all(
        self, title: str = "protocol invariants", batch: Optional[bool] = None
    ) -> Report:
        """Run every invariant; ``batch`` overrides the checker default."""
        report = Report(title)
        report.extend(self._sweep(self.invariants, batch))
        return report

    def check_table(
        self,
        table: ControllerTable,
        title: Optional[str] = None,
        batch: Optional[bool] = None,
    ) -> Report:
        """Run only the invariants that target ``table``."""
        report = Report(title or f"invariants on {table.schema.name}")
        selected = [
            inv
            for inv in self.invariants
            if inv.table == table.table_name or inv.table == table.schema.name
        ]
        report.extend(self._sweep(selected, batch))
        return report
