"""Uniform reporting for static checks.

Every static analysis (invariant checking, deadlock detection, mapping
preservation) produces :class:`CheckResult` records collected into a
:class:`Report`, so examples and benchmarks can render findings the same
way regardless of which analysis produced them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

__all__ = ["Severity", "CheckResult", "Report"]


class Severity:
    """Finding severities used by CheckResult."""

    OK = "ok"
    WARNING = "warning"
    ERROR = "error"


@dataclass
class CheckResult:
    """Outcome of one static check."""

    name: str
    passed: bool
    description: str = ""
    severity: str = Severity.ERROR
    details: list[Any] = field(default_factory=list)
    seconds: float = 0.0

    @property
    def status(self) -> str:
        if self.passed:
            return "PASS"
        return "FAIL" if self.severity == Severity.ERROR else "WARN"

    def summary_line(self) -> str:
        line = f"[{self.status}] {self.name}"
        if self.description:
            line += f" — {self.description}"
        if not self.passed and self.details:
            line += f" ({len(self.details)} finding(s))"
        return line


@dataclass
class Report:
    """A batch of check results with aggregate accessors."""

    title: str
    results: list[CheckResult] = field(default_factory=list)

    def add(self, result: CheckResult) -> None:
        self.results.append(result)

    def extend(self, results: Iterable[CheckResult]) -> None:
        self.results.extend(results)

    @property
    def passed(self) -> bool:
        return all(r.passed for r in self.results)

    @property
    def failures(self) -> list[CheckResult]:
        return [r for r in self.results if not r.passed]

    @property
    def total_seconds(self) -> float:
        return sum(r.seconds for r in self.results)

    def render(self, show_details: bool = True, max_details: int = 5) -> str:
        lines = [f"== {self.title} =="]
        for r in self.results:
            lines.append("  " + r.summary_line())
            if show_details and not r.passed:
                for d in r.details[:max_details]:
                    lines.append(f"      {d}")
                if len(r.details) > max_details:
                    lines.append(
                        f"      ... and {len(r.details) - max_details} more"
                    )
        n_fail = len(self.failures)
        lines.append(
            f"  -- {len(self.results)} checks, {n_fail} failing, "
            f"{self.total_seconds:.3f}s total"
        )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
