"""Thin relational-database layer over the standard-library ``sqlite3``.

The paper stores all controller tables in "a central database" (ORACLE8 in
the original deployment).  Everything the methodology needs from the
database — column tables, cross products, ``WHERE`` filtering, joins,
``EXCEPT``, recursive queries — is available in SQLite, so this module is
the only place that touches ``sqlite3`` directly.

All protocol values are stored as TEXT; the paper's NULL dontcare/noop is
SQL NULL.
"""

from __future__ import annotations

import sqlite3
import time
from typing import Any, Iterable, Optional, Sequence

from ..telemetry import get_tracer
from .expr import Row, Value
from .schema import Column, TableSchema
from .sqlgen import quote_ident, quote_value

__all__ = ["ProtocolDatabase", "DatabaseError"]


class DatabaseError(RuntimeError):
    """A SQL statement failed; the message names the sqlite3 error class
    and includes the offending statement."""


#: statement prefixes whose plans ``EXPLAIN QUERY PLAN`` can prepare even
#: after the original ran (a second CREATE would fail on "already exists").
_PLANNABLE = ("SELECT", "WITH", "INSERT", "UPDATE", "DELETE")


def _explain_target(sql: str) -> Optional[str]:
    """The statement (or embedded SELECT) to run EXPLAIN QUERY PLAN on,
    or None when the statement kind cannot be re-prepared safely."""
    flat = sql.lstrip()
    upper = flat.upper()
    if upper.startswith(_PLANNABLE):
        return flat
    if upper.startswith("CREATE TABLE"):
        # CREATE TABLE … AS SELECT …: plan the SELECT part.
        idx = upper.find(" AS SELECT")
        if idx >= 0:
            return flat[idx + len(" AS "):]
    return None


def _dict_factory(cursor: sqlite3.Cursor, row: tuple) -> dict[str, Value]:
    return {d[0]: row[i] for i, d in enumerate(cursor.description)}


class ProtocolDatabase:
    """A central database holding column tables and controller tables."""

    #: suffix used for per-column domain tables
    COLUMN_TABLE_PREFIX = "col_"

    def __init__(self, path: str = ":memory:") -> None:
        self._conn = sqlite3.connect(path)
        self._conn.row_factory = _dict_factory
        # The workloads are bulk inserts + analytical reads; classic
        # journaling adds nothing for an in-memory scratch database.
        self._conn.execute("PRAGMA synchronous = OFF")

    # -- lifecycle ------------------------------------------------------------
    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ProtocolDatabase":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def connection(self) -> sqlite3.Connection:
        return self._conn

    # -- raw access -----------------------------------------------------------
    def _explain(self, sql: str, params: Sequence) -> Optional[list]:
        """Capture EXPLAIN QUERY PLAN rows for a slow statement; goes
        straight to the connection so the plan query itself is untraced."""
        target = _explain_target(sql)
        if target is None:
            return None
        try:
            cur = self._conn.execute(f"EXPLAIN QUERY PLAN {target}", params)
            return [r.get("detail") for r in cur.fetchall()]
        except sqlite3.Error:
            return None

    def execute(self, sql: str, params: Sequence = ()) -> sqlite3.Cursor:
        tracer = get_tracer()
        if not tracer.enabled:
            try:
                return self._conn.execute(sql, params)
            except sqlite3.Error as e:
                raise DatabaseError(
                    f"{type(e).__name__}: {e}\nSQL was:\n{sql}"
                ) from e
        t0 = time.perf_counter()
        try:
            cursor = self._conn.execute(sql, params)
        except sqlite3.Error as e:
            tracer.record_sql(
                sql,
                n_params=len(params),
                seconds=time.perf_counter() - t0,
                status="error",
                error=type(e).__name__,
            )
            raise DatabaseError(
                f"{type(e).__name__}: {e}\nSQL was:\n{sql}"
            ) from e
        dt = time.perf_counter() - t0
        plan = self._explain(sql, params) if tracer.wants_plan(dt) else None
        changed = cursor.rowcount if cursor.rowcount >= 0 else None
        tracer.record_sql(
            sql, n_params=len(params), seconds=dt, plan=plan, changed=changed,
        )
        return cursor

    def executemany(self, sql: str, rows: Iterable[Sequence]) -> None:
        tracer = get_tracer()
        if not tracer.enabled:
            try:
                self._conn.executemany(sql, rows)
            except sqlite3.Error as e:
                raise DatabaseError(
                    f"{type(e).__name__}: {e}\nSQL was:\n{sql}"
                ) from e
            return
        t0 = time.perf_counter()
        try:
            cursor = self._conn.executemany(sql, rows)
        except sqlite3.Error as e:
            tracer.record_sql(
                sql,
                seconds=time.perf_counter() - t0,
                status="error",
                error=type(e).__name__,
            )
            raise DatabaseError(
                f"{type(e).__name__}: {e}\nSQL was:\n{sql}"
            ) from e
        changed = cursor.rowcount if cursor.rowcount >= 0 else None
        tracer.record_sql(
            sql, seconds=time.perf_counter() - t0, changed=changed,
        )

    def query(self, sql: str, params: Sequence = ()) -> list[dict[str, Value]]:
        rows = self.execute(sql, params).fetchall()
        if rows:
            tracer = get_tracer()
            if tracer.enabled:
                tracer.record_sql_rows(sql, len(rows))
        return rows

    def scalar(self, sql: str, params: Sequence = ()) -> Any:
        rows = self.query(sql, params)
        if not rows:
            return None
        return next(iter(rows[0].values()))

    # -- table management -------------------------------------------------------
    def table_exists(self, name: str) -> bool:
        return (
            self.scalar(
                "SELECT COUNT(*) FROM sqlite_master WHERE type IN ('table','view') AND name = ?",
                (name,),
            )
            > 0
        )

    def drop_table(self, name: str) -> None:
        self.execute(f"DROP TABLE IF EXISTS {quote_ident(name)}")
        self.execute(f"DROP VIEW IF EXISTS {quote_ident(name)}")

    def row_count(self, name: str) -> int:
        return int(self.scalar(f"SELECT COUNT(*) FROM {quote_ident(name)}"))

    def table_columns(self, name: str) -> list[str]:
        return [r["name"] for r in self.query(f"PRAGMA table_info({quote_ident(name)})")]

    def rows(self, name: str, order_by: Optional[Sequence[str]] = None) -> list[dict[str, Value]]:
        sql = f"SELECT * FROM {quote_ident(name)}"
        if order_by:
            sql += " ORDER BY " + ", ".join(quote_ident(c) for c in order_by)
        return self.query(sql)

    # -- column (domain) tables --------------------------------------------------
    def column_table_name(self, table: str, column: str) -> str:
        return f"{self.COLUMN_TABLE_PREFIX}{table}__{column}"

    def create_column_table(self, table: str, column: Column) -> str:
        """Create the paper's *column table*: one row per legal value,
        including NULL for nullable columns."""
        name = self.column_table_name(table, column.name)
        self.drop_table(name)
        self.execute(f"CREATE TABLE {quote_ident(name)} ({quote_ident(column.name)} TEXT)")
        self.executemany(
            f"INSERT INTO {quote_ident(name)} VALUES (?)",
            [(v,) for v in column.domain],
        )
        return name

    def create_column_tables(self, schema: TableSchema) -> dict[str, str]:
        """Create all column tables for a schema; returns column -> table name."""
        return {c.name: self.create_column_table(schema.name, c) for c in schema.columns}

    # -- data tables ---------------------------------------------------------------
    def create_table(self, name: str, columns: Sequence[str], replace: bool = True) -> None:
        if replace:
            self.drop_table(name)
        cols = ", ".join(f"{quote_ident(c)} TEXT" for c in columns)
        self.execute(f"CREATE TABLE {quote_ident(name)} ({cols})")

    def insert_rows(self, name: str, columns: Sequence[str], rows: Iterable[Row]) -> int:
        cols = ", ".join(quote_ident(c) for c in columns)
        marks = ", ".join("?" for _ in columns)
        data = [tuple(r[c] for c in columns) for r in rows]
        self.executemany(f"INSERT INTO {quote_ident(name)} ({cols}) VALUES ({marks})", data)
        return len(data)

    def create_table_from_rows(
        self, name: str, columns: Sequence[str], rows: Iterable[Row]
    ) -> int:
        self.create_table(name, columns)
        return self.insert_rows(name, columns, rows)

    def create_table_as(self, name: str, select_sql: str, replace: bool = True) -> None:
        """The workhorse: ``CREATE TABLE name AS SELECT …`` (paper section 5
        uses exactly this form to carve implementation tables out of ED)."""
        if replace:
            self.drop_table(name)
        self.execute(f"CREATE TABLE {quote_ident(name)} AS {select_sql}")

    # -- set operations ---------------------------------------------------------------
    def difference_count(self, left: str, right: str, columns: Sequence[str]) -> int:
        """``|left EXCEPT right|`` over the named columns — 0 means every
        row of ``left`` appears in ``right`` (containment)."""
        cols = ", ".join(quote_ident(c) for c in columns)
        sql = (
            f"SELECT COUNT(*) FROM (SELECT {cols} FROM {quote_ident(left)} "
            f"EXCEPT SELECT {cols} FROM {quote_ident(right)})"
        )
        return int(self.scalar(sql))

    def tables_equal(self, left: str, right: str, columns: Sequence[str]) -> bool:
        return (
            self.difference_count(left, right, columns) == 0
            and self.difference_count(right, left, columns) == 0
        )

    def distinct_values(self, table: str, column: str) -> list[Value]:
        return [
            r[column]
            for r in self.query(
                f"SELECT DISTINCT {quote_ident(column)} AS {quote_ident(column)} "
                f"FROM {quote_ident(table)}"
            )
        ]
