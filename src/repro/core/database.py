"""Thin relational-database layer over the standard-library ``sqlite3``.

The paper stores all controller tables in "a central database" (ORACLE8 in
the original deployment).  Everything the methodology needs from the
database — column tables, cross products, ``WHERE`` filtering, joins,
``EXCEPT``, recursive queries — is available in SQLite, so this module is
the only place that touches ``sqlite3`` directly.

All protocol values are stored as TEXT; the paper's NULL dontcare/noop is
SQL NULL.
"""

from __future__ import annotations

import itertools
import sqlite3
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Iterable, Optional, Sequence

from ..runtime.retry import RetryPolicy, call_with_retry
from ..telemetry import get_tracer
from .expr import Row, Value
from .schema import Column, TableSchema
from .sqlgen import quote_ident, quote_value

__all__ = [
    "ProtocolDatabase",
    "DatabaseError",
    "IndexSpec",
    "SNAPSHOT_SUPPORTED",
    "PORTABLE_SNAPSHOT_MAGIC",
    "DB_RETRY_POLICY",
    "BUSY_TIMEOUT_MS",
]

#: default retry policy for transient sqlite errors ("database is
#: locked" et al., see :func:`repro.runtime.retry.classify_error`):
#: three attempts with short exponential backoff — enough to ride out a
#: concurrent reader/writer on a ``--db`` file without stalling the
#: in-memory pipelines (which never hit a transient error).
DB_RETRY_POLICY = RetryPolicy(max_attempts=3, base_delay=0.01,
                              max_delay=0.25, jitter=0.5)

#: ``PRAGMA busy_timeout`` for file-backed databases: how long sqlite
#: itself blocks on a locked database before surfacing the error that
#: the retry policy then backs off on.
BUSY_TIMEOUT_MS = 5000

#: True when the running Python exposes ``sqlite3.Connection.serialize`` /
#: ``deserialize`` (3.11+); the parallel deadlock workers fall back to
#: sequential in-database execution without it.
SNAPSHOT_SUPPORTED = hasattr(sqlite3.Connection, "serialize")

#: Prefix tagging the portable snapshot format: a full SQL dump of the
#: database (schema *including indexes and views* plus every row) that
#: :meth:`ProtocolDatabase.deserialize` can restore on any Python.  Raw
#: ``sqlite3.serialize`` images instead start with the sqlite file magic
#: ``b"SQLite format 3\\x00"``, so the two formats are self-describing.
PORTABLE_SNAPSHOT_MAGIC = b"repro-snapshot:sqldump:1\n"


class DatabaseError(RuntimeError):
    """A SQL statement failed; the message names the sqlite3 error class
    and includes the offending statement."""


@dataclass(frozen=True)
class IndexSpec:
    """A declarative index request: ``columns`` of ``table``, optionally
    named (a stable name is derived otherwise) and UNIQUE."""

    table: str
    columns: tuple[str, ...]
    name: Optional[str] = None
    unique: bool = False

    @property
    def index_name(self) -> str:
        """The index's database name (derived from table + columns when
        not given explicitly)."""
        return self.name or f"idx_{self.table}__{'_'.join(self.columns)}"

    def sql(self) -> str:
        """The ``CREATE INDEX IF NOT EXISTS`` statement for this spec."""
        cols = ", ".join(quote_ident(c) for c in self.columns)
        unique = "UNIQUE " if self.unique else ""
        return (
            f"CREATE {unique}INDEX IF NOT EXISTS {quote_ident(self.index_name)} "
            f"ON {quote_ident(self.table)} ({cols})"
        )


class _LRUCache:
    """A tiny bounded LRU map for metadata probe results."""

    def __init__(self, maxsize: int = 256) -> None:
        self.maxsize = maxsize
        self._data: OrderedDict[Any, Any] = OrderedDict()

    def get(self, key: Any, default: Any = None) -> Any:
        try:
            self._data.move_to_end(key)
            return self._data[key]
        except KeyError:
            return default

    def __contains__(self, key: Any) -> bool:
        return key in self._data

    def put(self, key: Any, value: Any) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)

    def clear(self) -> None:
        self._data.clear()


#: first SQL keyword -> which metadata caches the statement can invalidate.
#: DML changes row counts; DDL can change schema *and* counts.  Unknown
#: verbs conservatively invalidate everything.
_READ_VERBS = frozenset({"SELECT", "WITH", "PRAGMA", "EXPLAIN", "ANALYZE"})
_DML_VERBS = frozenset({"INSERT", "UPDATE", "DELETE", "REPLACE"})


#: statement prefixes whose plans ``EXPLAIN QUERY PLAN`` can prepare even
#: after the original ran (a second CREATE would fail on "already exists").
_PLANNABLE = ("SELECT", "WITH", "INSERT", "UPDATE", "DELETE")


def _explain_target(sql: str) -> Optional[str]:
    """The statement (or embedded SELECT) to run EXPLAIN QUERY PLAN on,
    or None when the statement kind cannot be re-prepared safely."""
    flat = sql.lstrip()
    upper = flat.upper()
    if upper.startswith(_PLANNABLE):
        return flat
    if upper.startswith("CREATE TABLE"):
        # CREATE TABLE … AS SELECT …: plan the SELECT part.
        idx = upper.find(" AS SELECT")
        if idx >= 0:
            return flat[idx + len(" AS "):]
    return None


def _dict_factory(cursor: sqlite3.Cursor, row: tuple) -> dict[str, Value]:
    return {d[0]: row[i] for i, d in enumerate(cursor.description)}


class ProtocolDatabase:
    """A central database holding column tables and controller tables."""

    #: suffix used for per-column domain tables
    COLUMN_TABLE_PREFIX = "col_"

    #: rows per ``executemany`` batch in :meth:`insert_rows`.
    INSERT_CHUNK = 512

    def __init__(self, path: str = ":memory:", cache_metadata: bool = True,
                 retry_policy: Optional[RetryPolicy] = None) -> None:
        # A generous prepared-statement cache: the pipelines re-issue the
        # same parameterized probes (row counts, lookups) thousands of
        # times per run.
        self._conn = sqlite3.connect(path, cached_statements=256)
        self._conn.row_factory = _dict_factory
        self._retry_policy = retry_policy or DB_RETRY_POLICY
        if ":memory:" in path or "mode=memory" in path:
            # The workloads are bulk inserts + analytical reads; classic
            # journaling adds nothing for an in-memory scratch database.
            self._conn.execute("PRAGMA synchronous = OFF")
        else:
            # File-backed (--db/--save-db): WAL lets concurrent readers
            # proceed while a writer holds the log, and the busy timeout
            # turns instant "database is locked" failures into bounded
            # waits before the retry policy even sees them.
            self._conn.execute("PRAGMA journal_mode = WAL")
            self._conn.execute(f"PRAGMA busy_timeout = {BUSY_TIMEOUT_MS}")
            self._conn.execute("PRAGMA synchronous = NORMAL")
        self._cache_metadata = cache_metadata
        # Schema-level facts (table existence, column lists) survive DML;
        # row counts survive only reads.  Both are invalidated from
        # execute()/executemany(), so callers issuing writes through this
        # class never observe a stale probe.
        self._schema_cache = _LRUCache()
        self._count_cache = _LRUCache()
        self._closed = False

    # -- lifecycle ------------------------------------------------------------
    def close(self) -> None:
        """Commit any open implicit transaction and close the connection
        (without the commit, a file-backed database would roll back
        everything written since the last snapshot on close).

        Idempotent: a second close is a no-op.  A *failed* final commit
        is not swallowed — for a file-backed database it means writes
        made since the last commit (e.g. the ``__explore_summary`` table
        a ``--save-db`` run just recorded) would silently vanish, so it
        surfaces as :class:`DatabaseError`.  The connection is still
        closed in that case; resources never leak."""
        if self._closed:
            return
        self._closed = True
        try:
            self._conn.commit()
        except sqlite3.Error as exc:
            raise DatabaseError(
                f"final commit failed on close; writes since the last "
                f"commit are lost: {exc}") from exc
        finally:
            self._conn.close()

    def __enter__(self) -> "ProtocolDatabase":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def connection(self) -> sqlite3.Connection:
        return self._conn

    def snapshot(self, portable: bool = False) -> bytes:
        """The whole database serialized to bytes, cheap to hand to
        worker threads that :meth:`deserialize` into private copies.

        Uses ``sqlite3.Connection.serialize`` when available (Python
        3.11+, :data:`SNAPSHOT_SUPPORTED`).  Without it — or when
        ``portable`` is True — falls back to a tagged SQL-dump format
        (:data:`PORTABLE_SNAPSHOT_MAGIC`).  Both formats round-trip the
        complete schema: tables, views, and crucially the indexes created
        via :class:`IndexSpec`, which the analysis engines rely on after a
        clone."""
        if self._closed:
            raise DatabaseError("database is closed; cannot snapshot")
        self._conn.commit()
        if SNAPSHOT_SUPPORTED and not portable:
            return self._conn.serialize()
        # iterdump()'s generator unpacks sqlite_master rows positionally,
        # which the dict row factory would break — swap it out while the
        # dump is materialized.
        prev = self._conn.row_factory
        self._conn.row_factory = None
        try:
            script = "\n".join(self._conn.iterdump())
        finally:
            self._conn.row_factory = prev
        return PORTABLE_SNAPSHOT_MAGIC + script.encode("utf-8")

    @classmethod
    def deserialize(cls, data: bytes, cache_metadata: bool = True) -> "ProtocolDatabase":
        """A new in-memory database restored from :meth:`snapshot` bytes.

        Accepts both snapshot formats (raw ``sqlite3.serialize`` image and
        the portable SQL dump) and restores rows *and* the full schema —
        including :class:`IndexSpec` indexes, so a restored clone keeps the
        query plans the analysis engines were tuned for.  Raw images
        require Python 3.11+; the portable format restores anywhere."""
        db = cls(cache_metadata=cache_metadata)
        if data.startswith(PORTABLE_SNAPSHOT_MAGIC):
            script = data[len(PORTABLE_SNAPSHOT_MAGIC):].decode("utf-8")
            db._conn.executescript(script)
            db._conn.commit()
        elif SNAPSHOT_SUPPORTED:
            db._conn.deserialize(data)
            # deserialize() swaps out the whole main database and with it
            # the per-database synchronous setting from __init__.
            db._conn.execute("PRAGMA synchronous = OFF")
        else:
            raise DatabaseError(
                "cannot restore a raw sqlite3 snapshot on this Python "
                "(serialize()/deserialize() need 3.11+); create the "
                "snapshot with snapshot(portable=True) instead"
            )
        db.invalidate_caches()
        return db

    # -- metadata cache -----------------------------------------------------------
    def invalidate_caches(self) -> None:
        """Drop every cached metadata probe (automatic for writes issued
        through this class; call manually after raw ``connection`` writes)."""
        self._schema_cache.clear()
        self._count_cache.clear()

    def _note_statement(self, sql: str) -> None:
        """Invalidate metadata caches according to the statement verb."""
        verb = sql.lstrip().split(None, 1)[0].upper() if sql.strip() else ""
        if verb in _READ_VERBS:
            return
        self._count_cache.clear()
        if verb not in _DML_VERBS:
            self._schema_cache.clear()

    def _cached_probe(self, cache: _LRUCache, key: Any, compute) -> Any:
        if not self._cache_metadata:
            return compute()
        if key in cache:
            get_tracer().incr("db.cache.hits")
            return cache.get(key)
        get_tracer().incr("db.cache.misses")
        value = compute()
        cache.put(key, value)
        return value

    # -- raw access -----------------------------------------------------------
    def _explain(self, sql: str, params: Sequence) -> Optional[list]:
        """Capture EXPLAIN QUERY PLAN rows for a slow statement; goes
        straight to the connection so the plan query itself is untraced."""
        target = _explain_target(sql)
        if target is None:
            return None
        try:
            cur = self._conn.execute(f"EXPLAIN QUERY PLAN {target}", params)
            return [r.get("detail") for r in cur.fetchall()]
        except sqlite3.Error:
            return None

    def _retried(self, op):
        """Run one connection call, retrying transient sqlite errors
        ("database is locked" and friends) with backoff + jitter; fatal
        errors and exhausted retries propagate for the callers' normal
        :class:`DatabaseError` wrapping."""
        return call_with_retry(op, self._retry_policy, metric="db.retries")

    def execute(self, sql: str, params: Sequence = ()) -> sqlite3.Cursor:
        if self._closed:
            raise DatabaseError(
                f"database is closed; cannot execute:\n{sql}")
        self._note_statement(sql)
        tracer = get_tracer()
        if not tracer.enabled:
            try:
                return self._retried(lambda: self._conn.execute(sql, params))
            except sqlite3.Error as e:
                raise DatabaseError(
                    f"{type(e).__name__}: {e}\nSQL was:\n{sql}"
                ) from e
        t0 = time.perf_counter()
        try:
            cursor = self._retried(lambda: self._conn.execute(sql, params))
        except sqlite3.Error as e:
            tracer.record_sql(
                sql,
                n_params=len(params),
                seconds=time.perf_counter() - t0,
                status="error",
                error=type(e).__name__,
            )
            raise DatabaseError(
                f"{type(e).__name__}: {e}\nSQL was:\n{sql}"
            ) from e
        dt = time.perf_counter() - t0
        plan = self._explain(sql, params) if tracer.wants_plan(dt) else None
        changed = cursor.rowcount if cursor.rowcount >= 0 else None
        tracer.record_sql(
            sql, n_params=len(params), seconds=dt, plan=plan, changed=changed,
        )
        return cursor

    _EXECUTEMANY_SAVEPOINT = "repro_executemany"

    def _executemany_attempt(self, sql: str, chunk: Sequence) -> sqlite3.Cursor:
        """One retryable ``executemany`` attempt.

        A transient error can land mid-batch with a prefix of the chunk
        already applied inside the open transaction; rolling that prefix
        back — to a savepoint when a transaction was already open,
        otherwise the implicit transaction the batch itself began —
        makes a retry insert the chunk exactly once instead of
        double-applying the survived prefix."""
        if self._conn.in_transaction:
            self._conn.execute(f"SAVEPOINT {self._EXECUTEMANY_SAVEPOINT}")
            try:
                cursor = self._conn.executemany(sql, chunk)
            except sqlite3.Error:
                try:
                    self._conn.execute(
                        f"ROLLBACK TO {self._EXECUTEMANY_SAVEPOINT}")
                    self._conn.execute(
                        f"RELEASE {self._EXECUTEMANY_SAVEPOINT}")
                except sqlite3.Error:
                    pass  # surface the original failure, not the cleanup's
                raise
            self._conn.execute(f"RELEASE {self._EXECUTEMANY_SAVEPOINT}")
            return cursor
        try:
            return self._conn.executemany(sql, chunk)
        except sqlite3.Error:
            if self._conn.in_transaction:
                try:
                    self._conn.execute("ROLLBACK")
                except sqlite3.Error:
                    pass
            raise

    def executemany(self, sql: str, rows: Iterable[Sequence]) -> None:
        if self._closed:
            raise DatabaseError(
                f"database is closed; cannot execute:\n{sql}")
        self._note_statement(sql)
        # Materialize before the first attempt: ``rows`` may be a
        # one-shot iterator that a failed attempt would have partially
        # consumed, which is what used to make retrying unsafe here.
        if not isinstance(rows, (list, tuple)):
            rows = list(rows)
        tracer = get_tracer()
        if not tracer.enabled:
            try:
                self._retried(lambda: self._executemany_attempt(sql, rows))
            except sqlite3.Error as e:
                raise DatabaseError(
                    f"{type(e).__name__}: {e}\nSQL was:\n{sql}"
                ) from e
            return
        t0 = time.perf_counter()
        try:
            cursor = self._retried(
                lambda: self._executemany_attempt(sql, rows))
        except sqlite3.Error as e:
            tracer.record_sql(
                sql,
                seconds=time.perf_counter() - t0,
                status="error",
                error=type(e).__name__,
            )
            raise DatabaseError(
                f"{type(e).__name__}: {e}\nSQL was:\n{sql}"
            ) from e
        changed = cursor.rowcount if cursor.rowcount >= 0 else None
        tracer.record_sql(
            sql, seconds=time.perf_counter() - t0, changed=changed,
        )

    def query(self, sql: str, params: Sequence = ()) -> list[dict[str, Value]]:
        rows = self.execute(sql, params).fetchall()
        if rows:
            tracer = get_tracer()
            if tracer.enabled:
                tracer.record_sql_rows(sql, len(rows))
        return rows

    def query_tuples(self, sql: str, params: Sequence = ()) -> list[tuple]:
        """Like :meth:`query` but rows come back as plain tuples — for
        bulk reads where per-row dict construction would dominate."""
        cursor = self.execute(sql, params)
        cursor.row_factory = None
        rows = cursor.fetchall()
        if rows:
            tracer = get_tracer()
            if tracer.enabled:
                tracer.record_sql_rows(sql, len(rows))
        return rows

    def scalar(self, sql: str, params: Sequence = ()) -> Any:
        row = self.execute(sql, params).fetchone()
        if row is None:
            return None
        tracer = get_tracer()
        if tracer.enabled:
            tracer.record_sql_rows(sql, 1)
        return next(iter(row.values()))

    # -- table management -------------------------------------------------------
    def table_exists(self, name: str) -> bool:
        return self._cached_probe(
            self._schema_cache,
            ("exists", name),
            lambda: self.scalar(
                "SELECT COUNT(*) FROM sqlite_master WHERE type IN ('table','view') AND name = ?",
                (name,),
            )
            > 0,
        )

    def drop_table(self, name: str) -> None:
        self.execute(f"DROP TABLE IF EXISTS {quote_ident(name)}")
        self.execute(f"DROP VIEW IF EXISTS {quote_ident(name)}")

    def row_count(self, name: str) -> int:
        return self._cached_probe(
            self._count_cache,
            name,
            lambda: int(self.scalar(f"SELECT COUNT(*) FROM {quote_ident(name)}")),
        )

    def table_columns(self, name: str) -> list[str]:
        return self._cached_probe(
            self._schema_cache,
            ("columns", name),
            lambda: [
                r["name"]
                for r in self.query(f"PRAGMA table_info({quote_ident(name)})")
            ],
        )

    # -- indexes and planner statistics ------------------------------------------
    def create_index(
        self,
        spec_or_table: "IndexSpec | str",
        columns: Optional[Sequence[str]] = None,
        name: Optional[str] = None,
        unique: bool = False,
    ) -> str:
        """Create an index (``IF NOT EXISTS``) from an :class:`IndexSpec`
        or from ``(table, columns)``; returns the index name."""
        if isinstance(spec_or_table, IndexSpec):
            spec = spec_or_table
        else:
            if not columns:
                raise ValueError("create_index needs columns when given a table name")
            spec = IndexSpec(spec_or_table, tuple(columns), name=name, unique=unique)
        self.execute(spec.sql())
        get_tracer().incr("db.indexes_created")
        return spec.index_name

    def analyze(self, table: Optional[str] = None) -> None:
        """Run ``ANALYZE`` (optionally scoped to one table) so the query
        planner has cardinality statistics for the new indexes."""
        self.execute(f"ANALYZE {quote_ident(table)}" if table else "ANALYZE")

    def rows(self, name: str, order_by: Optional[Sequence[str]] = None) -> list[dict[str, Value]]:
        sql = f"SELECT * FROM {quote_ident(name)}"
        if order_by:
            sql += " ORDER BY " + ", ".join(quote_ident(c) for c in order_by)
        return self.query(sql)

    # -- column (domain) tables --------------------------------------------------
    def column_table_name(self, table: str, column: str) -> str:
        return f"{self.COLUMN_TABLE_PREFIX}{table}__{column}"

    def create_column_table(self, table: str, column: Column) -> str:
        """Create the paper's *column table*: one row per legal value,
        including NULL for nullable columns."""
        name = self.column_table_name(table, column.name)
        self.drop_table(name)
        self.execute(f"CREATE TABLE {quote_ident(name)} ({quote_ident(column.name)} TEXT)")
        self.executemany(
            f"INSERT INTO {quote_ident(name)} VALUES (?)",
            [(v,) for v in column.domain],
        )
        return name

    def create_column_tables(self, schema: TableSchema) -> dict[str, str]:
        """Create all column tables for a schema; returns column -> table name."""
        return {c.name: self.create_column_table(schema.name, c) for c in schema.columns}

    # -- data tables ---------------------------------------------------------------
    def create_table(self, name: str, columns: Sequence[str], replace: bool = True) -> None:
        if replace:
            self.drop_table(name)
        cols = ", ".join(f"{quote_ident(c)} TEXT" for c in columns)
        self.execute(f"CREATE TABLE {quote_ident(name)} ({cols})")

    def insert_rows(self, name: str, columns: Sequence[str], rows: Iterable[Row]) -> int:
        cols = ", ".join(quote_ident(c) for c in columns)
        marks = ", ".join("?" for _ in columns)
        sql = f"INSERT INTO {quote_ident(name)} ({cols}) VALUES ({marks})"
        # Stream in bounded chunks instead of materializing the whole row
        # list: generators of any size insert in O(chunk) memory.
        tuples = (tuple(r[c] for c in columns) for r in rows)
        total = 0
        while True:
            chunk = list(itertools.islice(tuples, self.INSERT_CHUNK))
            if not chunk:
                return total
            self.executemany(sql, chunk)
            total += len(chunk)

    def create_table_from_rows(
        self, name: str, columns: Sequence[str], rows: Iterable[Row]
    ) -> int:
        self.create_table(name, columns)
        return self.insert_rows(name, columns, rows)

    def create_table_as(self, name: str, select_sql: str, replace: bool = True) -> None:
        """The workhorse: ``CREATE TABLE name AS SELECT …`` (paper section 5
        uses exactly this form to carve implementation tables out of ED)."""
        if replace:
            self.drop_table(name)
        self.execute(f"CREATE TABLE {quote_ident(name)} AS {select_sql}")

    # -- set operations ---------------------------------------------------------------
    def difference_count(self, left: str, right: str, columns: Sequence[str]) -> int:
        """``|left EXCEPT right|`` over the named columns — 0 means every
        row of ``left`` appears in ``right`` (containment)."""
        cols = ", ".join(quote_ident(c) for c in columns)
        sql = (
            f"SELECT COUNT(*) FROM (SELECT {cols} FROM {quote_ident(left)} "
            f"EXCEPT SELECT {cols} FROM {quote_ident(right)})"
        )
        return int(self.scalar(sql))

    def tables_equal(self, left: str, right: str, columns: Sequence[str]) -> bool:
        return (
            self.difference_count(left, right, columns) == 0
            and self.difference_count(right, left, columns) == 0
        )

    def distinct_values(self, table: str, column: str) -> list[Value]:
        return [
            r[column]
            for r in self.query(
                f"SELECT DISTINCT {quote_ident(column)} AS {quote_ident(column)} "
                f"FROM {quote_ident(table)}"
            )
        ]
