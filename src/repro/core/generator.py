"""Table generation by constraint solving (paper section 3).

Two strategies:

* :meth:`TableGenerator.generate_monolithic` — the naive form: one cross
  join over *all* column tables with the full constraint conjunction in the
  ``WHERE`` clause.  The database must enumerate the whole cross product,
  which is exponential in the number of columns; this is the configuration
  the paper reports as taking "around 6 hours" for the directory table.

* :meth:`TableGenerator.generate_incremental` — the paper's production
  flow: first solve only the input-column constraints to build the legal
  input combinations, then extend the table one output column (group) at a
  time.  Each step's cross product is |table so far| × |column domain|, so
  cost grows linearly with columns instead of exponentially ("Incremental
  table generation produces the final table within a few minutes").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..telemetry import get_tracer, span
from .constraints import ConstraintSet
from .database import ProtocolDatabase
from .expr import And, BoolExpr, TRUE, TrueExpr
from .schema import TableSchema
from .sqlgen import quote_ident, to_sql
from .table import ControllerTable

__all__ = ["TableGenerator", "GenerationResult", "GenerationBudgetError"]


class GenerationBudgetError(RuntimeError):
    """The cross product the monolithic strategy would enumerate exceeds
    the configured budget; this is how benchmarks sweep column counts
    without hanging the suite."""


@dataclass
class StepTiming:
    """Timing/size record for one incremental step (or the single
    monolithic step)."""

    label: str
    columns: tuple[str, ...]
    cross_product_size: int
    result_rows: int
    seconds: float


@dataclass
class GenerationResult:
    table: ControllerTable
    strategy: str
    steps: list[StepTiming] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return sum(s.seconds for s in self.steps)

    @property
    def total_enumerated(self) -> int:
        """Total cross-product rows the database had to consider."""
        return sum(s.cross_product_size for s in self.steps)


class TableGenerator:
    """Generates one controller table from its column constraints."""

    def __init__(
        self,
        db: ProtocolDatabase,
        constraints: ConstraintSet,
        table_name: Optional[str] = None,
    ) -> None:
        self.db = db
        self.constraints = constraints
        self.schema = constraints.schema
        self.table_name = table_name or self.schema.name
        self._column_tables = db.create_column_tables(self.schema)

    # -- helpers -----------------------------------------------------------------
    def _cross_join(self, columns: Sequence[str]) -> str:
        parts = [quote_ident(self._column_tables[c]) for c in columns]
        return " CROSS JOIN ".join(parts)

    @staticmethod
    def _conj(exprs: Sequence[BoolExpr]) -> BoolExpr:
        parts = tuple(e for e in exprs if not isinstance(e, TrueExpr))
        if not parts:
            return TRUE
        if len(parts) == 1:
            return parts[0]
        return And(parts)

    # -- monolithic --------------------------------------------------------------
    def generate_monolithic(
        self, budget: Optional[int] = 50_000_000
    ) -> GenerationResult:
        """Solve the conjunction of every column constraint over the full
        cross product of column tables."""
        size = self.schema.cross_product_size()
        if budget is not None and size > budget:
            raise GenerationBudgetError(
                f"monolithic cross product for {self.schema.name!r} has "
                f"{size} rows, exceeding the budget of {budget}; this is the "
                "blow-up the incremental strategy exists to avoid"
            )
        cols = ", ".join(quote_ident(c) for c in self.schema.column_names)
        where = to_sql(self.constraints.conjunction())
        sql = f"SELECT {cols} FROM {self._cross_join(self.schema.column_names)} WHERE {where}"
        with span("generate.monolithic", table=self.table_name,
                  cross_product=size) as sp:
            self.db.create_table_as(self.table_name, sql)
        table = ControllerTable(self.db, self.schema, self.table_name)
        get_tracer().incr("generate.rows", table.row_count)
        step = StepTiming(
            label="monolithic",
            columns=self.schema.column_names,
            cross_product_size=size,
            result_rows=table.row_count,
            seconds=sp.seconds,
        )
        return GenerationResult(table=table, strategy="monolithic", steps=[step])

    # -- incremental --------------------------------------------------------------
    def generate_incremental(self) -> GenerationResult:
        """Inputs first, then output columns one (group) at a time."""
        with span("generate.table", table=self.table_name,
                  strategy="incremental"):
            return self._generate_incremental()

    def _generate_incremental(self) -> GenerationResult:
        steps: list[StepTiming] = []
        work = f"__gen_{self.table_name}"

        # Step 1: legal input combinations.
        input_names = self.schema.input_names
        where = to_sql(self.constraints.input_conjunction())
        cols = ", ".join(quote_ident(c) for c in input_names)
        sql = f"SELECT {cols} FROM {self._cross_join(input_names)} WHERE {where}"
        with span("generate.inputs", table=self.table_name) as sp:
            self.db.create_table_as(work, sql)
        steps.append(
            StepTiming(
                label="inputs",
                columns=input_names,
                cross_product_size=self.schema.cross_product_size(input_names),
                result_rows=self.db.row_count(work),
                seconds=sp.seconds,
            )
        )

        # Step 2..n: extend by each output group.
        have: list[str] = list(input_names)
        for group in self.constraints.generation_plan():
            exprs = [self.constraints.get(c).expr for c in group]
            where = to_sql(self._conj(exprs))
            prev_cols = ", ".join(quote_ident(c) for c in have)
            new_cols = ", ".join(quote_ident(c) for c in group)
            nxt = f"{work}_{group[0]}"
            # The previous step already counted the working table.
            base_rows = steps[-1].result_rows
            sql = (
                f"SELECT {prev_cols}, {new_cols} FROM {quote_ident(work)} "
                f"CROSS JOIN {self._cross_join(group)} WHERE {where}"
            )
            with span("generate.column", table=self.table_name,
                      columns=",".join(group)) as sp:
                self.db.create_table_as(nxt, sql)
            group_domain = 1
            for c in group:
                group_domain *= self.schema.column(c).domain_size
            steps.append(
                StepTiming(
                    label=f"+{','.join(group)}",
                    columns=tuple(group),
                    cross_product_size=base_rows * group_domain,
                    result_rows=self.db.row_count(nxt),
                    seconds=sp.seconds,
                )
            )
            self.db.drop_table(work)
            work = nxt
            have.extend(group)

        # Final: copy into the target name with schema column order.
        cols = ", ".join(quote_ident(c) for c in self.schema.column_names)
        self.db.create_table_as(
            self.table_name, f"SELECT {cols} FROM {quote_ident(work)}"
        )
        self.db.drop_table(work)
        table = ControllerTable(self.db, self.schema, self.table_name)
        get_tracer().incr("generate.rows", table.row_count)
        return GenerationResult(table=table, strategy="incremental", steps=steps)
