"""Code generation from implementation tables (paper section 5: "Code is
automatically generated from these tables using SQL report generation").

Three targets:

* :func:`generate_python` — a plain-Python decision function equivalent to
  the table (stored NULL inputs are wildcards, NULL outputs are noops).
  The generated source is executable; :func:`compile_python` returns the
  callable so tests can cross-check it against ``ControllerTable.lookup``.

* :func:`generate_dispatch` — an integer-indexed dispatch kernel: every
  input column is encoded over its domain (the same "code 0 is NULL"
  convention the Verilog backend uses), rows are grouped by their
  wildcard mask, and each group becomes a dict keyed by the packed
  mixed-radix code of its concrete columns.  A probe is a handful of
  dict lookups regardless of row count — this is what the compiled
  explorer kernel (:mod:`repro.core.kernel`) executes.

* :func:`generate_verilog` — a synthesizable-flavoured Verilog skeleton:
  value encodings as localparams and one casez arm per table row.  It is a
  faithful rendering of what Fujitsu's flow emitted, sufficient to eyeball
  timing/area structure; we do not simulate it.
"""

from __future__ import annotations

import math
from typing import Callable, Optional, Sequence

from .schema import TableSchema
from .table import ControllerTable

__all__ = [
    "generate_python",
    "compile_python",
    "generate_dispatch",
    "generate_dispatch_source",
    "compile_dispatch",
    "generate_verilog",
]


def _py_ident(name: str) -> str:
    out = "".join(ch if ch.isalnum() else "_" for ch in name)
    if not out or out[0].isdigit():
        out = "_" + out
    return out


def generate_python(
    table: ControllerTable, function_name: Optional[str] = None
) -> str:
    """Render the table as a Python function ``f(**inputs) -> dict``.

    Rows are emitted in storage order; wildcard (NULL) inputs produce no
    condition, so for deterministic tables order is irrelevant.  Inputs
    with no matching row raise ``LookupError``.
    """
    fn = function_name or f"{_py_ident(table.schema.name)}_next"
    inputs = table.schema.input_names
    outputs = table.schema.output_names
    args = ", ".join(_py_ident(c) for c in inputs)
    lines = [
        f"def {fn}({args}):",
        f'    """Generated from controller table {table.schema.name!r}',
        f"    ({table.row_count} rows); do not edit by hand.\"\"\"",
    ]
    rows = table.rows()
    if not rows:
        lines.append("    raise LookupError('empty controller table')")
        return "\n".join(lines) + "\n"
    for row in rows:
        conds = [
            f"{_py_ident(c)} == {row[c]!r}" for c in inputs if row[c] is not None
        ]
        cond = " and ".join(conds) if conds else "True"
        result = ", ".join(f"{c!r}: {row[c]!r}" for c in outputs)
        lines.append(f"    if {cond}:")
        lines.append(f"        return {{{result}}}")
    lines.append(
        "    raise LookupError('no transition for inputs: %r' % locals())"
    )
    return "\n".join(lines) + "\n"


def compile_python(
    table: ControllerTable, function_name: Optional[str] = None
) -> Callable[..., dict]:
    """Exec the generated source and return the controller function."""
    fn = function_name or f"{_py_ident(table.schema.name)}_next"
    src = generate_python(table, fn)
    namespace: dict = {}
    exec(compile(src, f"<generated:{table.schema.name}>", "exec"), namespace)
    return namespace[fn]


def generate_dispatch_source(
    schema: TableSchema,
    rows: Sequence[tuple[int, dict]],
    function_name: Optional[str] = None,
) -> str:
    """Render ``rows`` of ``schema`` as an indexed dispatch function.

    ``rows`` is a sequence of ``(rowid, row_dict)`` in storage order (see
    :meth:`ControllerTable.rows_with_ids`).  The generated function takes
    the input columns positionally in schema order and returns the list
    of matching row *indexes* (positions in ``rows``, not rowids).

    Encoding: each input column maps its values to small integers; code 0
    is reserved for NULL and for values outside the encoded domain, so an
    unknown (or ``None``) probe value matches only rows that leave that
    column as a wildcard — exactly the SQL ``col IS NULL OR col IS ?``
    semantics.  The domain is the schema domain plus any out-of-domain
    values a mutated table actually stores.  Rows sharing a wildcard mask
    form one group dict keyed by the packed mixed-radix code of the
    mask's columns; since real codes are >= 1 and every factor exceeds
    its digit, packing is injective and a probe never aliases.
    """
    fn = function_name or f"{_py_ident(schema.name)}_dispatch"
    inputs = schema.input_names
    enc: dict[str, dict] = {}
    for col in schema.inputs:
        stored = {row[col.name] for _, row in rows if row[col.name] is not None}
        extra = sorted(stored - set(col.values), key=repr)
        enc[col.name] = {
            v: i + 1 for i, v in enumerate((*col.values, *extra))
        }
    radix = {c: len(enc[c]) + 1 for c in inputs}
    pos = {c: i for i, c in enumerate(inputs)}

    groups: dict[tuple, dict[int, list[int]]] = {}
    for idx, (_rowid, row) in enumerate(rows):
        mask = tuple(c for c in inputs if row[c] is not None)
        key = 0
        for c in mask:
            key = key * radix[c] + enc[c][row[c]]
        groups.setdefault(mask, {}).setdefault(key, []).append(idx)

    used = sorted(
        {c for mask in groups for c in mask}, key=lambda c: pos[c]
    )
    lines = [
        f"# Generated dispatch kernel for controller table "
        f"{schema.name!r} ({len(rows)} rows); do not edit by hand.",
        "# Code 0 is reserved for NULL and out-of-domain probe values;",
        "# rows are grouped by wildcard mask and indexed by the packed",
        "# mixed-radix code of the mask's concrete columns.",
    ]
    for c in used:
        items = ", ".join(f"{v!r}: {code}" for v, code in enc[c].items())
        lines.append(f"_E_{_py_ident(c)} = {{{items}}}")
    ordered = sorted(groups, key=lambda m: tuple(pos[c] for c in m))
    for j, mask in enumerate(ordered):
        body = ", ".join(
            f"{key}: {tuple(groups[mask][key])!r}"
            for key in sorted(groups[mask])
        )
        lines.append(f"_G_{j} = {{{body}}}  # mask: {mask!r}")
    args = ", ".join(_py_ident(c) for c in inputs)
    lines.append(f"def {fn}({args}):")
    lines.append(
        f'    """Generated dispatch for {schema.name!r}; returns matching'
        ' row indexes."""'
    )
    for c in used:
        i = _py_ident(c)
        lines.append(f"    c_{i} = _E_{i}.get({i}, 0)")
    lines.append("    m = []")
    for j, mask in enumerate(ordered):
        if mask:
            expr = f"c_{_py_ident(mask[0])}"
            for c in mask[1:]:
                expr = f"({expr}) * {radix[c]} + c_{_py_ident(c)}"
        else:
            expr = "0"
        lines.append(f"    r = _G_{j}.get({expr})")
        lines.append("    if r is not None:")
        lines.append("        m += r")
    lines.append("    return m")
    return "\n".join(lines) + "\n"


def generate_dispatch(
    table: ControllerTable, function_name: Optional[str] = None
) -> str:
    """Render a live :class:`ControllerTable` as a dispatch kernel."""
    return generate_dispatch_source(
        table.schema, table.rows_with_ids(), function_name
    )


def compile_dispatch(
    schema: TableSchema,
    rows: Sequence[tuple[int, dict]],
    function_name: Optional[str] = None,
) -> Callable[..., list]:
    """Exec the generated dispatch source and return the probe function."""
    fn = function_name or f"{_py_ident(schema.name)}_dispatch"
    src = generate_dispatch_source(schema, rows, fn)
    namespace: dict = {}
    exec(compile(src, f"<kernel:{schema.name}>", "exec"), namespace)
    return namespace[fn]


def _bits_for(n: int) -> int:
    return max(1, math.ceil(math.log2(max(n, 2))))


def generate_verilog(
    table: ControllerTable, module_name: Optional[str] = None
) -> str:
    """Render the table as a Verilog module with one casez arm per row.

    Every column gets a binary encoding over its domain (NULL encodes as
    all-don't-care ``?`` bits on inputs and as the all-zero noop code on
    outputs).
    """
    name = module_name or _py_ident(table.schema.name)
    enc: dict[str, dict] = {}
    width: dict[str, int] = {}
    for col in table.schema.columns:
        width[col.name] = _bits_for(col.domain_size)
        # Code 0 is reserved for NULL; real values start at 1.
        enc[col.name] = {v: i + 1 for i, v in enumerate(col.values)}

    inputs = table.schema.inputs
    outputs = table.schema.outputs
    lines = [f"// Generated from controller table {table.schema.name}; do not edit.",
             f"module {name} ("]
    ports = [f"    input  wire [{width[c.name]-1}:0] {_py_ident(c.name)}," for c in inputs]
    ports += [f"    output reg  [{width[c.name]-1}:0] {_py_ident(c.name)}," for c in outputs]
    if ports:
        ports[-1] = ports[-1].rstrip(",")
    lines += ports
    lines.append(");")
    lines.append("")
    for col in table.schema.columns:
        for v, code in enc[col.name].items():
            lines.append(
                f"  localparam [{width[col.name]-1}:0] "
                f"{_py_ident(col.name).upper()}_{_py_ident(v).upper()} = "
                f"{width[col.name]}'d{code};"
            )
    lines.append("")
    in_concat = "{" + ", ".join(_py_ident(c.name) for c in inputs) + "}"
    total_in = sum(width[c.name] for c in inputs)
    lines.append("  always @* begin")
    defaults = "    " + " ".join(
        f"{_py_ident(c.name)} = {width[c.name]}'d0;" for c in outputs
    )
    lines.append(defaults)
    lines.append(f"    casez ({in_concat})")
    for row in table.rows():
        pattern_parts = []
        for c in inputs:
            w = width[c.name]
            v = row[c.name]
            if v is None:
                pattern_parts.append("?" * w)
            else:
                pattern_parts.append(format(enc[c.name][v], f"0{w}b"))
        pattern = f"{total_in}'b" + "_".join(pattern_parts)
        assigns = []
        for c in outputs:
            v = row[c.name]
            code = 0 if v is None else enc[c.name][v]
            assigns.append(f"{_py_ident(c.name)} = {width[c.name]}'d{code};")
        lines.append(f"      {pattern}: begin {' '.join(assigns)} end")
    lines.append("      default: ; // no transition: inputs are illegal")
    lines.append("    endcase")
    lines.append("  end")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"
