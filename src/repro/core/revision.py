"""Revision management for controller tables (paper section 6).

"A total of 8 controller database tables were automatically generated,
updated and maintained throughout the development cycle.  Three
architects generated the initial controller database tables in 2 months
and went through several revisions subsequently."

This module provides what that workflow needs:

* :func:`diff_tables` — a semantic diff between two revisions of a
  controller table, keyed by input combination: rows *added*, *removed*,
  and *changed* (same inputs, different outputs), computed with SQL set
  operations.
* :class:`RevisionLog` — numbered snapshots of a table inside the central
  database, with diffs between any two revisions and a summary history.

Diffs are what a protocol architect reviews after editing constraints:
"this constraint change retired 12 transitions and altered the outputs of
3 others".
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from .database import ProtocolDatabase
from .expr import Row, Value
from .schema import TableSchema
from .sqlgen import quote_ident
from .table import ControllerTable

__all__ = ["RowChange", "TableDiff", "diff_tables", "RevisionLog"]


@dataclass(frozen=True)
class RowChange:
    """One input combination whose outputs differ between revisions."""

    inputs: tuple[tuple[str, Value], ...]
    before: tuple[tuple[str, Value], ...]
    after: tuple[tuple[str, Value], ...]

    def __str__(self) -> str:
        ins = ", ".join(f"{k}={v}" for k, v in self.inputs)
        changes = []
        before, after = dict(self.before), dict(self.after)
        for col in before:
            if before[col] != after[col]:
                changes.append(f"{col}: {before[col]} -> {after[col]}")
        return f"[{ins}] {'; '.join(changes)}"


@dataclass
class TableDiff:
    """The semantic difference between two revisions of one table."""

    table: str
    added: list[dict] = field(default_factory=list)
    removed: list[dict] = field(default_factory=list)
    changed: list[RowChange] = field(default_factory=list)

    @property
    def is_empty(self) -> bool:
        return not (self.added or self.removed or self.changed)

    @property
    def summary(self) -> str:
        return (f"{self.table}: +{len(self.added)} rows, "
                f"-{len(self.removed)} rows, ~{len(self.changed)} changed")

    def render(self, limit: int = 10) -> str:
        lines = [self.summary]
        for label, rows in (("added", self.added), ("removed", self.removed)):
            for r in rows[:limit]:
                pretty = ", ".join(f"{k}={v}" for k, v in r.items()
                                   if v is not None)
                lines.append(f"  {label}: {pretty}")
            if len(rows) > limit:
                lines.append(f"  ... {len(rows) - limit} more {label}")
        for c in self.changed[:limit]:
            lines.append(f"  changed: {c}")
        if len(self.changed) > limit:
            lines.append(f"  ... {len(self.changed) - limit} more changed")
        return "\n".join(lines)


def diff_tables(
    db: ProtocolDatabase,
    schema: TableSchema,
    before: str,
    after: str,
) -> TableDiff:
    """Semantic diff of two materialized revisions of the same schema.

    Rows are matched on the *input* columns: an input combination present
    in both revisions with different outputs is a change; combinations
    present on one side only are additions/removals.  Input combinations
    are assumed unique per revision (the determinism property every
    controller table must satisfy anyway).
    """
    inputs = schema.input_names
    outputs = schema.output_names
    in_cols = ", ".join(quote_ident(c) for c in inputs)
    all_cols = ", ".join(quote_ident(c) for c in schema.column_names)
    b, a = quote_ident(before), quote_ident(after)
    join = " AND ".join(
        f"o.{quote_ident(c)} IS n.{quote_ident(c)}" for c in inputs
    )

    diff = TableDiff(table=schema.name)

    # Added: input combinations only in the new revision.
    added_sql = (
        f"SELECT {all_cols} FROM {a} WHERE ({in_cols}) NOT IN "
        f"(SELECT {in_cols} FROM {b})"
    )
    diff.added = db.query(added_sql)

    removed_sql = (
        f"SELECT {all_cols} FROM {b} WHERE ({in_cols}) NOT IN "
        f"(SELECT {in_cols} FROM {a})"
    )
    diff.removed = db.query(removed_sql)

    # Changed: same inputs, any differing output.
    out_diff = " OR ".join(
        f"o.{quote_ident(c)} IS NOT n.{quote_ident(c)}" for c in outputs
    )
    if outputs:
        changed_sql = (
            "SELECT "
            + ", ".join(f"o.{quote_ident(c)} AS {quote_ident('b_' + c)}"
                        for c in schema.column_names)
            + ", "
            + ", ".join(f"n.{quote_ident(c)} AS {quote_ident('a_' + c)}"
                        for c in outputs)
            + f" FROM {b} o JOIN {a} n ON {join} WHERE {out_diff}"
        )
        for r in db.query(changed_sql):
            ins = tuple((c, r["b_" + c]) for c in inputs)
            before_out = tuple((c, r["b_" + c]) for c in outputs)
            after_out = tuple((c, r["a_" + c]) for c in outputs)
            diff.changed.append(RowChange(ins, before_out, after_out))
    return diff


@dataclass
class RevisionRecord:
    number: int
    snapshot_table: str
    message: str
    timestamp: float
    row_count: int


class RevisionLog:
    """Numbered snapshots of one controller table in the database."""

    def __init__(self, db: ProtocolDatabase, schema: TableSchema) -> None:
        self.db = db
        self.schema = schema
        self.records: list[RevisionRecord] = []

    def _snapshot_name(self, number: int) -> str:
        return f"rev_{self.schema.name}_{number}"

    def commit(self, table: ControllerTable, message: str = "") -> RevisionRecord:
        """Snapshot the current contents of ``table`` as a new revision."""
        if table.schema.column_names != self.schema.column_names:
            raise ValueError(
                f"table {table.schema.name!r} does not match the log's schema"
            )
        number = len(self.records) + 1
        name = self._snapshot_name(number)
        cols = ", ".join(quote_ident(c) for c in self.schema.column_names)
        self.db.create_table_as(
            name, f"SELECT {cols} FROM {quote_ident(table.table_name)}"
        )
        record = RevisionRecord(
            number=number,
            snapshot_table=name,
            message=message,
            timestamp=time.time(),
            row_count=self.db.row_count(name),
        )
        self.records.append(record)
        return record

    def __len__(self) -> int:
        return len(self.records)

    def revision(self, number: int) -> RevisionRecord:
        try:
            return self.records[number - 1]
        except IndexError:
            raise ValueError(f"no revision {number} (have {len(self)})") from None

    def table_at(self, number: int) -> ControllerTable:
        rec = self.revision(number)
        return ControllerTable(self.db, self.schema, rec.snapshot_table)

    def diff(self, old: int, new: Optional[int] = None) -> TableDiff:
        """Diff two revisions (``new`` defaults to the latest)."""
        new = new if new is not None else len(self.records)
        return diff_tables(
            self.db, self.schema,
            self.revision(old).snapshot_table,
            self.revision(new).snapshot_table,
        )

    def history(self) -> str:
        lines = [f"revision history of {self.schema.name} "
                 f"({len(self.records)} revision(s)):"]
        prev: Optional[RevisionRecord] = None
        for rec in self.records:
            line = f"  r{rec.number}: {rec.row_count} rows"
            if rec.message:
                line += f" — {rec.message}"
            if prev is not None:
                d = diff_tables(self.db, self.schema,
                                prev.snapshot_table, rec.snapshot_table)
                line += (f" (+{len(d.added)}/-{len(d.removed)}"
                         f"/~{len(d.changed)})")
            lines.append(line)
            prev = rec
        return "\n".join(lines)
