"""Constraint expression AST.

The paper (section 3) specifies each controller-table column with a *column
constraint*: a boolean expression of the form ``condition ? true-expr :
false-expr`` where sub-expressions are built from column names, literals and
literal sets with the relational operators ``=``, ``!=``, ``in`` and the
boolean operators ``and``, ``or``, ``not``.

This module defines that expression language as a small AST that supports

* evaluation against a concrete row (a mapping ``column -> value``), with
  NULL-safe equality (``None`` compares equal to ``None`` only), and
* free-column analysis (used to order incremental generation), and
* structural equality/hashing (all nodes are frozen dataclasses).

Compilation of the same AST to SQLite SQL lives in :mod:`repro.core.sqlgen`
so that the two evaluators can be cross-checked in tests.

Values are strings or ``None``.  ``None`` models the paper's special NULL
value: a *dontcare* in input columns and a *noop* in output columns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Union

Value = Optional[str]
Row = Mapping[str, Value]

__all__ = [
    "Expr",
    "ValueExpr",
    "BoolExpr",
    "Col",
    "Lit",
    "Eq",
    "Ne",
    "In",
    "NotIn",
    "And",
    "Or",
    "Not",
    "TrueExpr",
    "FalseExpr",
    "Ternary",
    "TRUE",
    "FALSE",
    "C",
    "lit",
    "when",
    "cases",
]


class Expr:
    """Base class for all expression nodes."""

    def free_columns(self) -> frozenset[str]:
        """Names of all columns referenced anywhere in this expression."""
        raise NotImplementedError


# ---------------------------------------------------------------------------
# Value-level expressions
# ---------------------------------------------------------------------------


class ValueExpr(Expr):
    """An expression that evaluates to a column value (string or NULL)."""

    def eval_value(self, row: Row) -> Value:
        raise NotImplementedError

    # -- predicate builders -------------------------------------------------
    def eq(self, other: Union["ValueExpr", Value]) -> "Eq":
        return Eq(self, _as_value_expr(other))

    def ne(self, other: Union["ValueExpr", Value]) -> "Ne":
        return Ne(self, _as_value_expr(other))

    def isin(self, values) -> "In":
        return In(self, tuple(values))

    def notin(self, values) -> "NotIn":
        return NotIn(self, tuple(values))

    def is_null(self) -> "Eq":
        return Eq(self, Lit(None))

    def not_null(self) -> "Ne":
        return Ne(self, Lit(None))


@dataclass(frozen=True)
class Col(ValueExpr):
    """Reference to a column of the controller table being constrained."""

    name: str

    def eval_value(self, row: Row) -> Value:
        try:
            return row[self.name]
        except KeyError:
            raise KeyError(f"row has no column {self.name!r}") from None

    def free_columns(self) -> frozenset[str]:
        return frozenset((self.name,))

    def __repr__(self) -> str:  # compact reprs keep failure messages readable
        return f"C({self.name!r})"


@dataclass(frozen=True)
class Lit(ValueExpr):
    """A literal value; ``Lit(None)`` is the paper's NULL."""

    value: Value

    def eval_value(self, row: Row) -> Value:
        return self.value

    def free_columns(self) -> frozenset[str]:
        return frozenset()

    def __repr__(self) -> str:
        return f"Lit({self.value!r})"


def _as_value_expr(v: Union[ValueExpr, Value]) -> ValueExpr:
    if isinstance(v, ValueExpr):
        return v
    if v is None or isinstance(v, str):
        return Lit(v)
    raise TypeError(f"expected column value (str/None) or ValueExpr, got {v!r}")


# ---------------------------------------------------------------------------
# Boolean expressions
# ---------------------------------------------------------------------------


class BoolExpr(Expr):
    """An expression that evaluates to a boolean."""

    def eval(self, row: Row) -> bool:
        raise NotImplementedError

    def __and__(self, other: "BoolExpr") -> "And":
        _check_bool(other)
        return And((self, other))

    def __or__(self, other: "BoolExpr") -> "Or":
        _check_bool(other)
        return Or((self, other))

    def __invert__(self) -> "Not":
        return Not(self)


def _check_bool(e) -> None:
    if not isinstance(e, BoolExpr):
        raise TypeError(
            f"expected BoolExpr, got {e!r}; use C('col').eq(value) to build predicates"
        )


@dataclass(frozen=True)
class Eq(BoolExpr):
    """NULL-safe equality: ``NULL = NULL`` is true (SQL ``IS``)."""

    left: ValueExpr
    right: ValueExpr

    def eval(self, row: Row) -> bool:
        return self.left.eval_value(row) == self.right.eval_value(row)

    def free_columns(self) -> frozenset[str]:
        return self.left.free_columns() | self.right.free_columns()


@dataclass(frozen=True)
class Ne(BoolExpr):
    """NULL-safe inequality (SQL ``IS NOT``)."""

    left: ValueExpr
    right: ValueExpr

    def eval(self, row: Row) -> bool:
        return self.left.eval_value(row) != self.right.eval_value(row)

    def free_columns(self) -> frozenset[str]:
        return self.left.free_columns() | self.right.free_columns()


@dataclass(frozen=True)
class In(BoolExpr):
    """Set membership over a literal set, NULL-safe per member."""

    operand: ValueExpr
    values: tuple[Value, ...]

    def eval(self, row: Row) -> bool:
        return self.operand.eval_value(row) in self.values

    def free_columns(self) -> frozenset[str]:
        return self.operand.free_columns()


@dataclass(frozen=True)
class NotIn(BoolExpr):
    operand: ValueExpr
    values: tuple[Value, ...]

    def eval(self, row: Row) -> bool:
        return self.operand.eval_value(row) not in self.values

    def free_columns(self) -> frozenset[str]:
        return self.operand.free_columns()


@dataclass(frozen=True)
class And(BoolExpr):
    operands: tuple[BoolExpr, ...]

    def __post_init__(self) -> None:
        if not self.operands:
            raise ValueError("And() needs at least one operand")

    def eval(self, row: Row) -> bool:
        return all(op.eval(row) for op in self.operands)

    def free_columns(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for op in self.operands:
            out |= op.free_columns()
        return out


@dataclass(frozen=True)
class Or(BoolExpr):
    operands: tuple[BoolExpr, ...]

    def __post_init__(self) -> None:
        if not self.operands:
            raise ValueError("Or() needs at least one operand")

    def eval(self, row: Row) -> bool:
        return any(op.eval(row) for op in self.operands)

    def free_columns(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for op in self.operands:
            out |= op.free_columns()
        return out


@dataclass(frozen=True)
class Not(BoolExpr):
    operand: BoolExpr

    def eval(self, row: Row) -> bool:
        return not self.operand.eval(row)

    def free_columns(self) -> frozenset[str]:
        return self.operand.free_columns()


@dataclass(frozen=True)
class TrueExpr(BoolExpr):
    """The constraint of an unconstrained column (paper section 3)."""

    def eval(self, row: Row) -> bool:
        return True

    def free_columns(self) -> frozenset[str]:
        return frozenset()


@dataclass(frozen=True)
class FalseExpr(BoolExpr):
    def eval(self, row: Row) -> bool:
        return False

    def free_columns(self) -> frozenset[str]:
        return frozenset()


@dataclass(frozen=True)
class Ternary(BoolExpr):
    """The paper's ``condition ? true-expr : false-expr`` form.

    All three parts are boolean expressions; the branches are typically
    equalities binding the constrained column, and may themselves be
    ternaries, giving decision chains.
    """

    condition: BoolExpr
    if_true: BoolExpr
    if_false: BoolExpr

    def eval(self, row: Row) -> bool:
        branch = self.if_true if self.condition.eval(row) else self.if_false
        return branch.eval(row)

    def free_columns(self) -> frozenset[str]:
        return (
            self.condition.free_columns()
            | self.if_true.free_columns()
            | self.if_false.free_columns()
        )


TRUE = TrueExpr()
FALSE = FalseExpr()


# ---------------------------------------------------------------------------
# Builder helpers
# ---------------------------------------------------------------------------


def C(name: str) -> Col:
    """Shorthand column reference: ``C('inmsg').eq('readex')``."""
    return Col(name)


def lit(value: Value) -> Lit:
    """Shorthand literal: ``lit(None)`` is the paper's NULL."""
    return Lit(value)


def when(condition: BoolExpr, if_true: BoolExpr, if_false: BoolExpr) -> Ternary:
    """The paper's ternary constraint: ``condition ? if_true : if_false``."""
    for e in (condition, if_true, if_false):
        _check_bool(e)
    return Ternary(condition, if_true, if_false)


def cases(*branches: tuple[BoolExpr, BoolExpr], default: BoolExpr) -> BoolExpr:
    """Right-fold a (condition, expr) chain into nested ternaries.

    ``cases((c1, e1), (c2, e2), default=d)`` is ``c1 ? e1 : (c2 ? e2 : d)``
    — the idiom used throughout the ASURA constraint files, mirroring how
    the paper's column constraints chain one transaction after another.
    """
    _check_bool(default)
    out = default
    for condition, expr in reversed(branches):
        _check_bool(condition)
        _check_bool(expr)
        out = Ternary(condition, expr, out)
    return out
