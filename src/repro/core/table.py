"""Controller tables stored in the database.

A :class:`ControllerTable` binds a :class:`~repro.core.schema.TableSchema`
to a concrete database table and provides the operations the rest of the
system needs: row access, NULL-wildcard lookup (a stored NULL in an input
column is a dontcare and matches any concrete value), determinism checks,
projection, and summary statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Optional, Sequence

from .database import ProtocolDatabase
from .expr import Row, Value
from .schema import Role, SchemaError, TableSchema
from .sqlgen import quote_ident

__all__ = ["ControllerTable", "LookupError_", "AmbiguousMatchError", "NoMatchError"]


class LookupError_(RuntimeError):
    """Base class for table-lookup failures."""


class NoMatchError(LookupError_):
    """No row of the controller table matches the presented inputs."""


class AmbiguousMatchError(LookupError_):
    """More than one row matches the presented inputs — the controller is
    non-deterministic for this input combination."""


@dataclass
class TableStats:
    name: str
    n_columns: int
    n_inputs: int
    n_outputs: int
    n_rows: int
    values_per_column: dict[str, int]


class ControllerTable:
    """A generated (or hand-loaded) controller table living in the DB."""

    def __init__(self, db: ProtocolDatabase, schema: TableSchema, table_name: str) -> None:
        self.db = db
        self.schema = schema
        self.table_name = table_name
        if not db.table_exists(table_name):
            raise SchemaError(f"database has no table {table_name!r}")
        missing = set(schema.column_names) - set(db.table_columns(table_name))
        if missing:
            raise SchemaError(
                f"table {table_name!r} lacks schema columns {sorted(missing)}"
            )

    # -- construction ----------------------------------------------------------
    @classmethod
    def from_rows(
        cls,
        db: ProtocolDatabase,
        schema: TableSchema,
        rows: Iterable[Row],
        table_name: Optional[str] = None,
        validate: bool = True,
    ) -> "ControllerTable":
        rows = list(rows)
        if validate:
            for r in rows:
                schema.validate_row(r)
        name = table_name or schema.name
        db.create_table_from_rows(name, schema.column_names, rows)
        return cls(db, schema, name)

    # -- row access --------------------------------------------------------------
    @property
    def row_count(self) -> int:
        return self.db.row_count(self.table_name)

    def rows(self, order_by: Optional[Sequence[str]] = None) -> list[dict[str, Value]]:
        out = []
        sql = f"SELECT * FROM {quote_ident(self.table_name)}"
        if order_by:
            sql += " ORDER BY " + ", ".join(quote_ident(c) for c in order_by)
        for r in self.db.query(sql):
            out.append({c: r[c] for c in self.schema.column_names})
        return out

    def rows_with_ids(self) -> list[tuple[int, dict[str, Value]]]:
        """All rows paired with their sqlite rowids, in storage order.

        The compiled kernel backend (:mod:`repro.core.kernel`) snapshots a
        table through this so its matches report the same rowids coverage
        analysis records for the interpreted path.
        """
        sql = (f"SELECT rowid AS __rowid__, * "
               f"FROM {quote_ident(self.table_name)} ORDER BY rowid")
        return [
            (r["__rowid__"], {c: r[c] for c in self.schema.column_names})
            for r in self.db.query(sql)
        ]

    def distinct(self, column: str) -> list[Value]:
        self.schema.column(column)
        return self.db.distinct_values(self.table_name, column)

    # -- lookup --------------------------------------------------------------------
    def _match(
        self, inputs: Mapping[str, Value]
    ) -> list[tuple[int, dict[str, Value]]]:
        conds: list[str] = []
        params: list[Value] = []
        input_names = set(self.schema.input_names)
        for name, value in inputs.items():
            if name not in input_names:
                raise SchemaError(
                    f"{name!r} is not an input column of {self.schema.name!r}"
                )
            q = quote_ident(name)
            conds.append(f"({q} IS NULL OR {q} IS ?)")
            params.append(value)
        sql = (f"SELECT rowid AS __rowid__, * "
               f"FROM {quote_ident(self.table_name)}")
        if conds:
            sql += " WHERE " + " AND ".join(conds)
        return [
            (r["__rowid__"], {c: r[c] for c in self.schema.column_names})
            for r in self.db.query(sql, params)
        ]

    def match_rows(self, inputs: Mapping[str, Value]) -> list[dict[str, Value]]:
        """All rows whose input columns match ``inputs``.

        A stored NULL input is a dontcare and matches anything; input
        columns absent from ``inputs`` are unconstrained.  Only input
        columns may be supplied.
        """
        return [row for _, row in self._match(inputs)]

    def lookup_id(self, **inputs: Value) -> tuple[int, dict[str, Value]]:
        """Like :meth:`lookup` but also returns the matched rowid —
        coverage analysis records which table rows a simulation fired."""
        missing = set(self.schema.input_names) - set(inputs)
        if missing:
            raise SchemaError(f"lookup missing input columns {sorted(missing)}")
        matches = self._match(inputs)
        if not matches:
            raise NoMatchError(
                f"{self.schema.name}: no row matches inputs {dict(inputs)!r}"
            )
        if len(matches) > 1:
            raise AmbiguousMatchError(
                f"{self.schema.name}: {len(matches)} rows match inputs "
                f"{dict(inputs)!r}"
            )
        return matches[0]

    def lookup(self, **inputs: Value) -> dict[str, Value]:
        """The unique transition for a concrete input combination.

        Every input column must be supplied.  Raises :class:`NoMatchError`
        or :class:`AmbiguousMatchError` — the latter indicates a protocol
        specification bug that the determinism check also reports.
        """
        return self.lookup_id(**inputs)[1]

    def try_lookup(self, **inputs: Value) -> Optional[dict[str, Value]]:
        try:
            return self.lookup(**inputs)
        except NoMatchError:
            return None

    # -- static checks ---------------------------------------------------------------
    def find_overlapping_rows(self) -> list[tuple[dict[str, Value], dict[str, Value]]]:
        """Pairs of distinct rows whose input patterns intersect.

        Two rows overlap when for every input column their stored values
        are equal or at least one is a dontcare NULL; an overlap means some
        concrete input matches both rows.  A deterministic controller has
        no overlaps.
        """
        input_names = self.schema.input_names
        if not input_names:
            return []
        conds = []
        for name in input_names:
            q = quote_ident(name)
            conds.append(f"(a.{q} IS b.{q} OR a.{q} IS NULL OR b.{q} IS NULL)")
        t = quote_ident(self.table_name)
        sql = (
            f"SELECT a.rowid AS __ra, b.rowid AS __rb FROM {t} a JOIN {t} b "
            f"ON a.rowid < b.rowid AND " + " AND ".join(conds)
        )
        pairs = []
        for hit in self.db.query(sql):
            ra = self.db.query(
                f"SELECT * FROM {t} WHERE rowid = ?", (hit["__ra"],)
            )[0]
            rb = self.db.query(
                f"SELECT * FROM {t} WHERE rowid = ?", (hit["__rb"],)
            )[0]
            pairs.append(
                (
                    {c: ra[c] for c in self.schema.column_names},
                    {c: rb[c] for c in self.schema.column_names},
                )
            )
        return pairs

    def is_deterministic(self) -> bool:
        return not self.find_overlapping_rows()

    # -- derivation ---------------------------------------------------------------------
    def project(self, name: str, columns: Sequence[str], distinct: bool = True) -> "ControllerTable":
        """A new table keeping only the named columns."""
        sub = self.schema.projected(name, columns)
        cols = ", ".join(quote_ident(c) for c in columns)
        kw = "DISTINCT " if distinct else ""
        self.db.create_table_as(
            name, f"SELECT {kw}{cols} FROM {quote_ident(self.table_name)}"
        )
        return ControllerTable(self.db, sub, name)

    # -- statistics -----------------------------------------------------------------------
    def stats(self) -> TableStats:
        return TableStats(
            name=self.schema.name,
            n_columns=len(self.schema),
            n_inputs=len(self.schema.inputs),
            n_outputs=len(self.schema.outputs),
            n_rows=self.row_count,
            values_per_column={
                c.name: c.domain_size for c in self.schema.columns
            },
        )

    def __repr__(self) -> str:
        return (
            f"ControllerTable({self.schema.name!r}, rows={self.row_count}, "
            f"cols={len(self.schema)})"
        )
