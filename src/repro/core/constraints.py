"""Column constraints and constraint sets.

Paper section 3: "An SQL constraint called a column constraint is then
specified for each column of the controller table. ... The column
constraint for an unconstrained column is true."

A :class:`ConstraintSet` holds one constraint per column of a schema,
validates that every referenced column and literal is legal, and computes
the column ordering used by incremental generation (outputs are added "one
column at a time", so each output's constraint may only depend on columns
generated before it; mutually-dependent outputs form a group solved
jointly).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Optional, Sequence

import networkx as nx

from .expr import (
    And,
    BoolExpr,
    Col,
    Eq,
    Expr,
    In,
    Lit,
    Ne,
    Not,
    NotIn,
    Or,
    Ternary,
    TRUE,
)
from .schema import Column, Role, SchemaError, TableSchema

__all__ = ["ColumnConstraint", "ConstraintSet", "ConstraintError", "iter_nodes"]


class ConstraintError(ValueError):
    """A constraint is malformed: unknown column, out-of-domain literal,
    duplicate definition, or an illegal input/output dependency."""


def iter_nodes(expr: Expr) -> Iterator[Expr]:
    """Depth-first iteration over every node of an expression tree."""
    yield expr
    if isinstance(expr, (Eq, Ne)):
        yield from iter_nodes(expr.left)
        yield from iter_nodes(expr.right)
    elif isinstance(expr, (In, NotIn)):
        yield from iter_nodes(expr.operand)
    elif isinstance(expr, (And, Or)):
        for op in expr.operands:
            yield from iter_nodes(op)
    elif isinstance(expr, Not):
        yield from iter_nodes(expr.operand)
    elif isinstance(expr, Ternary):
        yield from iter_nodes(expr.condition)
        yield from iter_nodes(expr.if_true)
        yield from iter_nodes(expr.if_false)


@dataclass(frozen=True)
class ColumnConstraint:
    """The constraint attached to one column of a controller table."""

    column: str
    expr: BoolExpr

    def validate(self, schema: TableSchema) -> None:
        """Check all referenced columns exist and all literals compared
        against a column are in that column's domain (catches typos in
        protocol specs before they silently produce empty tables)."""
        if self.column not in schema:
            raise ConstraintError(
                f"constraint targets unknown column {self.column!r} of {schema.name!r}"
            )
        for node in iter_nodes(self.expr):
            if isinstance(node, Col) and node.name not in schema:
                raise ConstraintError(
                    f"constraint on {self.column!r} references unknown column "
                    f"{node.name!r} of table {schema.name!r}"
                )
            if isinstance(node, (Eq, Ne)):
                self._check_comparison(schema, node.left, node.right)
            if isinstance(node, (In, NotIn)) and isinstance(node.operand, Col):
                col = schema.column(node.operand.name)
                for v in node.values:
                    if not col.admits(v):
                        raise ConstraintError(
                            f"constraint on {self.column!r}: value {v!r} not in the "
                            f"domain of column {node.operand.name!r}"
                        )

    @staticmethod
    def _check_comparison(schema: TableSchema, left, right) -> None:
        pairs = ((left, right), (right, left))
        for a, b in pairs:
            if isinstance(a, Col) and isinstance(b, Lit):
                if a.name not in schema:
                    continue  # reported as an unknown column, not a bad value
                col = schema.column(a.name)
                if not col.admits(b.value):
                    raise ConstraintError(
                        f"value {b.value!r} compared against column {a.name!r} "
                        f"is not in its domain"
                    )

    def dependencies(self) -> frozenset[str]:
        """Columns this constraint reads, excluding the constrained column."""
        return self.expr.free_columns() - {self.column}


class ConstraintSet:
    """One constraint per column of a schema (missing columns default to
    the unconstrained ``TRUE``)."""

    def __init__(
        self,
        schema: TableSchema,
        constraints: Iterable[ColumnConstraint] = (),
    ) -> None:
        self.schema = schema
        self._by_column: dict[str, ColumnConstraint] = {}
        for c in constraints:
            self.add(c)

    def add(self, constraint: ColumnConstraint) -> None:
        constraint.validate(self.schema)
        if constraint.column in self._by_column:
            raise ConstraintError(
                f"duplicate constraint for column {constraint.column!r}; "
                "conjoin the expressions instead"
            )
        self._by_column[constraint.column] = constraint

    def set(self, column: str, expr: BoolExpr) -> None:
        self.add(ColumnConstraint(column, expr))

    def replace(self, column: str, expr: BoolExpr) -> BoolExpr:
        """Replace a column's constraint (the revision workflow: edit one
        constraint, regenerate, diff).  Returns the previous expression."""
        previous = self.get(column).expr
        self._by_column.pop(column, None)
        self.set(column, expr)
        return previous

    def get(self, column: str) -> ColumnConstraint:
        """The constraint for ``column``; TRUE if unconstrained."""
        self.schema.column(column)  # raises on unknown columns
        return self._by_column.get(column, ColumnConstraint(column, TRUE))

    def __iter__(self) -> Iterator[ColumnConstraint]:
        for name in self.schema.column_names:
            yield self.get(name)

    def __len__(self) -> int:
        return len(self._by_column)

    # -- conjunction ------------------------------------------------------------
    def conjunction(self) -> BoolExpr:
        """The conjunction of every column constraint — the formula whose
        satisfying assignments *are* the controller table (section 3)."""
        parts = tuple(c.expr for c in self if not isinstance(c.expr, type(TRUE)))
        if not parts:
            return TRUE
        if len(parts) == 1:
            return parts[0]
        return And(parts)

    # -- incremental ordering ------------------------------------------------------
    def generation_plan(self) -> list[tuple[str, ...]]:
        """Ordered groups of *output* columns for incremental generation.

        Each group's constraints depend only on input columns and on
        outputs from earlier groups.  Mutually-dependent outputs land in
        the same group (solved jointly).  Raises if an output constraint
        references a column that is neither an input nor an output.
        """
        inputs = set(self.schema.input_names)
        outputs = list(self.schema.output_names)
        g = nx.DiGraph()
        g.add_nodes_from(outputs)
        for name in outputs:
            for dep in self.get(name).dependencies():
                if dep in inputs:
                    continue
                if dep not in g:
                    raise ConstraintError(
                        f"output column {name!r} depends on unknown column {dep!r}"
                    )
                g.add_edge(dep, name)  # dep must be generated before name
        plan: list[tuple[str, ...]] = []
        condensed = nx.condensation(g)
        for component in nx.topological_sort(condensed):
            members = condensed.nodes[component]["members"]
            # Keep schema order within a group for reproducible output.
            ordered = tuple(c for c in outputs if c in members)
            plan.append(ordered)
        return plan

    def input_conjunction(self) -> BoolExpr:
        """Conjunction of constraints on input columns only.

        These define the legal input combinations ("Initially, the
        constraints corresponding to the inputs of D were solved to
        generate a table containing all the legal input combinations").
        Input constraints may only reference input columns.
        """
        inputs = set(self.schema.input_names)
        parts = []
        for name in self.schema.input_names:
            c = self.get(name)
            bad = c.expr.free_columns() - inputs
            if bad:
                raise ConstraintError(
                    f"input column {name!r} constraint references output columns "
                    f"{sorted(bad)}; input constraints must be over inputs only"
                )
            if not isinstance(c.expr, type(TRUE)):
                parts.append(c.expr)
        if not parts:
            return TRUE
        if len(parts) == 1:
            return parts[0]
        return And(tuple(parts))
