"""Automated channel-assignment repair (the paper's debugging loop).

Section 4.1: "The cycles that lead to deadlocks are resolved by modifying
V and/or by adding more virtual channels.  The process is repeated until
no deadlocks are found."  At Fujitsu that loop was manual; with the
analysis this fast, it can be searched.

Candidate fixes, in increasing hardware cost (mirroring the paper's own
history):

1. **move** one (message, src, dst) assignment off a cyclic channel onto
   a *new finite* virtual channel (the step that created VC4);
2. **dedicate** one (message, src, dst) assignment onto a new *dedicated*
   unbounded path (the step that fixed Figure 4 — "a dedicated hardware
   path ... for mread requests");
3. **dedicate a whole channel** (every message on it becomes unbounded —
   the big hammer).

The greedy search evaluates candidates by re-running the full analysis
and keeps whichever clears the most cycles at the lowest cost, repeating
until the assignment is deadlock-free.  Two invariants of the applied
sequence are enforced (and pinned by the property suite):

* fix costs are **non-decreasing across rounds** — once the search has
  escalated to a dearer kind of fix it never silently falls back, so the
  applied sequence reads as the paper's own history (cheap V edits
  first, dedicated hardware paths only when V edits plateau);
* a fix **never breaks a previously-clean channel** — candidates whose
  residual cycles touch any channel that was cycle-free before the fix
  are rejected outright, so repair strictly shrinks the cyclic region.

Every accepted fix can be independently **re-verified**
(:meth:`DeadlockRepairer.reverify`): structural invariants, the SQL
deadlock engine *and* its ``engine="python"`` parity oracle, plus an
optional bounded reachability exploration of the repaired system —
Sethi et al.'s discipline that a deadlock-freedom argument is only
trusted once each candidate fix is independently checked.  Long
searches checkpoint each applied round into a
:class:`~repro.runtime.CheckpointJournal` and resume mid-search.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from ..telemetry import get_tracer
from .database import ProtocolDatabase
from .deadlock import (
    ChannelAssignment,
    ControllerMessageSpec,
    DeadlockAnalyzer,
    VCAssignment,
)

__all__ = ["Fix", "RepairResult", "DeadlockRepairer", "REPAIR_JOURNAL_KIND"]

#: Cost ranking of fix kinds (cheap first).
_COSTS = {"move": 0, "dedicate-message": 1, "dedicate-channel": 2}

#: ``kind`` stamped into repair checkpoint-journal headers.
REPAIR_JOURNAL_KIND = "repair-search"


def _assignment_digest(assignment: ChannelAssignment) -> str:
    """A short stable digest of an assignment's content (journal guard:
    resuming against a different base V must fail loudly)."""
    payload = json.dumps(
        {
            "assignments": sorted(
                (a.message, a.src, a.dst, a.channel)
                for a in assignment.assignments
            ),
            "dedicated": sorted(assignment.dedicated),
        },
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def _cyclic_channels(cycles) -> set:
    return {vc for cycle in cycles for vc in cycle}


@dataclass(frozen=True)
class Fix:
    """One candidate modification of V."""

    kind: str  # 'move' | 'dedicate-message' | 'dedicate-channel'
    description: str
    assignment: ChannelAssignment = field(compare=False, hash=False)
    #: the (message, src, dst, new_channel) reroutes this fix applies.
    changes: tuple = ()
    #: channels this fix newly marks as dedicated/unbounded.
    dedicated: tuple = ()

    @property
    def cost(self) -> int:
        return _COSTS[self.kind]

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "description": self.description,
            "cost": self.cost,
            "assignment": self.assignment.name,
            "changes": [list(c) for c in self.changes],
            "dedicated": list(self.dedicated),
        }


@dataclass
class RepairResult:
    """Outcome of the repair search."""

    initial_cycles: list
    applied: list[Fix]
    final_assignment: ChannelAssignment
    final_cycles: list
    evaluated: int
    seconds: float
    #: per-fix re-verification verdicts (filled by
    #: :meth:`DeadlockRepairer.reverify`; empty until then).
    reverified: list[dict] = field(default_factory=list)

    @property
    def success(self) -> bool:
        return not self.final_cycles

    @property
    def total_cost(self) -> int:
        return sum(f.cost for f in self.applied)

    def to_dict(self) -> dict:
        out = {
            "success": self.success,
            "initial_cycles": len(self.initial_cycles),
            "final_cycles": len(self.final_cycles),
            "evaluated": self.evaluated,
            "total_cost": self.total_cost,
            "fixes": [f.to_dict() for f in self.applied],
        }
        if self.reverified:
            out["reverified"] = list(self.reverified)
        return out

    def render(self) -> str:
        lines = [
            f"repair search: {len(self.initial_cycles)} cycle(s) initially, "
            f"{self.evaluated} candidate evaluations, {self.seconds:.1f}s",
        ]
        for i, fix in enumerate(self.applied, 1):
            lines.append(f"  step {i}: {fix.description} (cost {fix.cost})")
        verdict = ("deadlock-free" if self.success
                   else f"{len(self.final_cycles)} cycle(s) remain")
        lines.append(f"  result: {verdict} "
                     f"(assignment {self.final_assignment.name!r}, "
                     f"total cost {self.total_cost})")
        for v in self.reverified:
            lines.append(f"  reverified {v['assignment']!r}: "
                         f"{'ok' if v['ok'] else 'FAILED'} "
                         f"(invariants={v['invariants']}, "
                         f"sql={v['deadlock_sql']['cycles']} cycle(s), "
                         f"python={v['deadlock_python']['cycles']} cycle(s)"
                         + (f", oracle={'clean' if not v['oracle']['caught'] else v['oracle']['kind']}"
                            if v.get("oracle") else "")
                         + ")")
        return "\n".join(lines)


class DeadlockRepairer:
    """Greedy search over channel-assignment edits.

    ``system`` is optional but unlocks the full re-verification battery
    (structural invariants and the bounded reachability oracle need a
    live system, not just its database); :meth:`for_system` threads a
    family member's own specs and channel assignments through, so a
    MOESI repair is searched and re-verified against MOESI tables.
    """

    def __init__(
        self,
        db: ProtocolDatabase,
        specs: Sequence[ControllerMessageSpec],
        assignment: ChannelAssignment,
        system=None,
    ) -> None:
        self.db = db
        self.specs = tuple(specs)
        self.base = assignment
        self.system = system
        self._counter = 0

    @classmethod
    def for_system(cls, system, assignment="v5") -> "DeadlockRepairer":
        """A repairer bound to one (family-member) system: its database,
        its deadlock specs, its channel assignment."""
        if isinstance(assignment, str):
            assignment = system.channel_assignments[assignment]
        return cls(system.db, system.deadlock_specs(), assignment,
                   system=system)

    # -- analysis ----------------------------------------------------------------
    def _cycles(self, assignment: ChannelAssignment,
                engine: Optional[str] = None):
        analyzer = DeadlockAnalyzer(self.db, self.specs, assignment)
        analysis = analyzer.analyze(
            table_name=f"pdt_repair_{self._counter}",
            engine=engine,
        )
        self._counter += 1
        return analysis.cycles()

    # -- candidates ---------------------------------------------------------------
    def _fresh_channel(self, assignment: ChannelAssignment) -> str:
        existing = assignment.channels() | assignment.dedicated
        n = 0
        while f"VCN{n}" in existing:
            n += 1
        return f"VCN{n}"

    def candidates(self, assignment: ChannelAssignment, cycles) -> list[Fix]:
        cyclic = {vc for cycle in cycles for vc in cycle}
        fixes: list[Fix] = []
        seen_keys: set[tuple] = set()
        for a in assignment.assignments:
            if a.channel not in cyclic:
                continue
            key = (a.message, a.src, a.dst)
            if key in seen_keys:
                continue
            seen_keys.add(key)
            fresh = self._fresh_channel(assignment)
            fixes.append(Fix(
                kind="move",
                description=(f"move {a.message} ({a.src}->{a.dst}) from "
                             f"{a.channel} to new channel {fresh}"),
                assignment=assignment.reassigned(
                    f"{assignment.name}+mv-{a.message}", {key: fresh},
                ),
                changes=((a.message, a.src, a.dst, fresh),),
            ))
            fixes.append(Fix(
                kind="dedicate-message",
                description=(f"dedicated hardware path for {a.message} "
                             f"({a.src}->{a.dst})"),
                assignment=assignment.reassigned(
                    f"{assignment.name}+ded-{a.message}", {key: fresh},
                    dedicated=assignment.dedicated | {fresh},
                ),
                changes=((a.message, a.src, a.dst, fresh),),
                dedicated=(fresh,),
            ))
        # Pairs of dedicated message paths: single-message fixes often
        # plateau (in our protocol both mread *and* mwrite must leave the
        # finite directory-to-memory channel, exactly as EXPERIMENTS.md
        # documents for the paper's fix).
        keys = sorted(seen_keys)
        for i, key_a in enumerate(keys):
            for key_b in keys[i + 1:]:
                fresh = self._fresh_channel(assignment)
                fresh2 = f"{fresh}b"
                fixes.append(Fix(
                    kind="dedicate-message",
                    description=(f"dedicated hardware paths for "
                                 f"{key_a[0]} ({key_a[1]}->{key_a[2]}) and "
                                 f"{key_b[0]} ({key_b[1]}->{key_b[2]})"),
                    assignment=assignment.reassigned(
                        f"{assignment.name}+ded-{key_a[0]}-{key_b[0]}",
                        {key_a: fresh, key_b: fresh2},
                        dedicated=assignment.dedicated | {fresh, fresh2},
                    ),
                    changes=((*key_a, fresh), (*key_b, fresh2)),
                    dedicated=(fresh, fresh2),
                ))
        for vc in sorted(cyclic):
            fixes.append(Fix(
                kind="dedicate-channel",
                description=f"make all of {vc} an unbounded dedicated path",
                assignment=ChannelAssignment(
                    f"{assignment.name}+ded-{vc}",
                    assignment.assignments,
                    dedicated=assignment.dedicated | {vc},
                ),
                dedicated=(vc,),
            ))
        return fixes

    # -- journaled resume ------------------------------------------------------------
    def _replay_fix(self, assignment: ChannelAssignment,
                    record: dict) -> Fix:
        """Rebuild one applied fix from its journal record."""
        changes = tuple(tuple(c) for c in record.get("changes", ()))
        newly_dedicated = tuple(record.get("dedicated", ()))
        if changes or newly_dedicated:
            rebuilt = assignment.reassigned(
                record["name"],
                {(m, s, d): ch for m, s, d, ch in changes},
                dedicated=assignment.dedicated | set(newly_dedicated),
            )
        else:
            rebuilt = assignment
        return Fix(
            kind=record["kind"],
            description=record["description"],
            assignment=rebuilt,
            changes=changes,
            dedicated=newly_dedicated,
        )

    # -- the loop --------------------------------------------------------------------
    def search(self, max_rounds: int = 4,
               journal_path: Optional[str] = None) -> RepairResult:
        """Repeat the paper's analyze-modify loop until deadlock-free.

        With ``journal_path`` every applied round is durably appended to
        a checkpoint journal first; re-running against an existing
        journal replays the recorded fixes (no candidate re-evaluation)
        and continues the search from where the previous process died.
        """
        from ..runtime import CheckpointJournal, load_journal

        t0 = time.perf_counter()
        evaluated = 0
        current = self.base
        applied: list[Fix] = []
        journal = None
        header = {
            "kind": REPAIR_JOURNAL_KIND,
            "assignment": self.base.name,
            "base_digest": _assignment_digest(self.base),
        }
        if journal_path is not None:
            if os.path.exists(journal_path) \
                    and os.path.getsize(journal_path) > 0:
                _, units = load_journal(journal_path)
                for round_no in sorted(units):
                    fix = self._replay_fix(current, units[round_no])
                    applied.append(fix)
                    current = fix.assignment
                get_tracer().incr("repair.search.resumed_rounds",
                                  len(applied))
            journal = CheckpointJournal.open(journal_path, header)

        initial_cycles = self._cycles(self.base)
        cycles = self._cycles(current) if applied else initial_cycles
        # The applied-fix invariants: costs never decrease across rounds,
        # and no fix may leave a cycle through a channel that was clean
        # before it (repair strictly shrinks the cyclic region).
        cost_floor = max((f.cost for f in applied), default=0)

        for round_no in range(len(applied), max_rounds):
            if not cycles:
                break
            # Cheap fixes first (moving a message / a dedicated path for
            # one message — the paper's own steps).  A whole-channel
            # dedication is an architectural big hammer (unbounded
            # buffering for everything on it) and is only considered when
            # no cheap fix makes progress.
            cyclic_before = _cyclic_channels(cycles)
            all_fixes = self.candidates(current, cycles)
            best: Optional[tuple[tuple, Fix, list]] = None
            for tier in (("move", "dedicate-message"), ("dedicate-channel",)):
                for fix in all_fixes:
                    if fix.kind not in tier or fix.cost < cost_floor:
                        continue
                    fixed_cycles = self._cycles(fix.assignment)
                    evaluated += 1
                    if _cyclic_channels(fixed_cycles) - cyclic_before:
                        continue  # would break a previously-clean channel
                    score = (len(fixed_cycles), fix.cost)
                    if best is None or score < best[0]:
                        best = (score, fix, fixed_cycles)
                if best is not None and len(best[2]) < len(cycles):
                    break  # a fix in this tier makes progress
            if best is None or len(best[2]) >= len(cycles):
                break  # nothing helps
            _, fix, cycles = best
            applied.append(fix)
            current = fix.assignment
            cost_floor = fix.cost
            get_tracer().incr("repair.search.fixes")
            if journal is not None:
                journal.record(round_no, {
                    "kind": fix.kind,
                    "description": fix.description,
                    "name": fix.assignment.name,
                    "changes": [list(c) for c in fix.changes],
                    "dedicated": list(fix.dedicated),
                    "cycles_after": len(cycles),
                })

        if journal is not None:
            journal.close()
        get_tracer().incr("repair.search.evaluated", evaluated)
        return RepairResult(
            initial_cycles=initial_cycles,
            applied=applied,
            final_assignment=current,
            final_cycles=cycles,
            evaluated=evaluated,
            seconds=time.perf_counter() - t0,
        )

    # -- independent re-verification --------------------------------------------------
    def reverify(
        self,
        result: RepairResult,
        oracle_depth: int = 0,
        oracle_nodes: int = 2,
        oracle_lines: int = 1,
        oracle_capacity: int = 1,
    ) -> list[dict]:
        """Independently re-verify every applied fix of ``result``.

        Each fix's assignment is re-analyzed with *both* deadlock
        engines (the set-based SQL engine and the pure-python parity
        oracle must agree); when the repairer holds a live ``system``,
        the structural invariants are re-checked and — with
        ``oracle_depth > 0`` — the *final* repaired assignment is handed
        to the bounded reachability oracle for a ground-truth sweep.
        The verdict list is stored on ``result.reverified`` and a fix is
        ``ok`` only if every check it could run passed.
        """
        verdicts: list[dict] = []
        for i, fix in enumerate(result.applied):
            sql_cycles = self._cycles(fix.assignment, engine="sql")
            py_cycles = self._cycles(fix.assignment, engine="python")
            is_final = i == len(result.applied) - 1
            verdict: dict[str, Any] = {
                "fix": fix.description,
                "assignment": fix.assignment.name,
                "cost": fix.cost,
                "deadlock_sql": {"free": not sql_cycles,
                                 "cycles": len(sql_cycles)},
                "deadlock_python": {"free": not py_cycles,
                                    "cycles": len(py_cycles)},
                "engines_agree": len(sql_cycles) == len(py_cycles),
                "invariants": None,
                "oracle": None,
            }
            if self.system is not None:
                verdict["invariants"] = bool(
                    self.system.check_invariants().passed)
                if is_final and oracle_depth > 0:
                    verdict["oracle"] = self._oracle_verdict(
                        fix.assignment, oracle_depth, oracle_nodes,
                        oracle_lines, oracle_capacity)
            checks = [verdict["engines_agree"]]
            if is_final:
                # Intermediate fixes legitimately leave residual cycles;
                # the final assignment must be clean under every engine.
                checks += [verdict["deadlock_sql"]["free"],
                           verdict["deadlock_python"]["free"]]
            if verdict["invariants"] is not None:
                checks.append(verdict["invariants"])
            if verdict["oracle"] is not None:
                checks.append(not verdict["oracle"]["caught"])
            verdict["ok"] = all(checks)
            verdicts.append(verdict)
            get_tracer().incr("repair.reverify.ok" if verdict["ok"]
                              else "repair.reverify.failed")
        result.reverified = verdicts
        return verdicts

    def _oracle_verdict(self, assignment: ChannelAssignment, depth: int,
                        nodes: int, lines: int, capacity: int) -> dict:
        """Bounded ground-truth sweep of the repaired assignment: the
        repaired V is registered on the live system under its own name
        and explored like any oracle-checked mutant."""
        from ..explore.oracle import oracle_check

        name = assignment.name
        previous = self.system.channel_assignments.get(name)
        self.system.channel_assignments[name] = assignment
        try:
            verdict = oracle_check(
                self.system, assignment=name, depth=depth, nodes=nodes,
                lines=lines, capacity=capacity, stop_on_violation=True)
        finally:
            if previous is None:
                self.system.channel_assignments.pop(name, None)
            else:
                self.system.channel_assignments[name] = previous
        return {
            "caught": bool(verdict.caught),
            "kind": verdict.kind,
            "states": verdict.states,
            "depth": verdict.depth,
        }
