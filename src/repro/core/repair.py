"""Automated channel-assignment repair (the paper's debugging loop).

Section 4.1: "The cycles that lead to deadlocks are resolved by modifying
V and/or by adding more virtual channels.  The process is repeated until
no deadlocks are found."  At Fujitsu that loop was manual; with the
analysis this fast, it can be searched.

Candidate fixes, in increasing hardware cost (mirroring the paper's own
history):

1. **move** one (message, src, dst) assignment off a cyclic channel onto
   a *new finite* virtual channel (the step that created VC4);
2. **dedicate** one (message, src, dst) assignment onto a new *dedicated*
   unbounded path (the step that fixed Figure 4 — "a dedicated hardware
   path ... for mread requests");
3. **dedicate a whole channel** (every message on it becomes unbounded —
   the big hammer).

The greedy search evaluates candidates by re-running the full analysis
and keeps whichever clears the most cycles at the lowest cost, repeating
until the assignment is deadlock-free.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from .database import ProtocolDatabase
from .deadlock import (
    ChannelAssignment,
    ControllerMessageSpec,
    DeadlockAnalyzer,
    VCAssignment,
)

__all__ = ["Fix", "RepairResult", "DeadlockRepairer"]

#: Cost ranking of fix kinds (cheap first).
_COSTS = {"move": 0, "dedicate-message": 1, "dedicate-channel": 2}


@dataclass(frozen=True)
class Fix:
    """One candidate modification of V."""

    kind: str  # 'move' | 'dedicate-message' | 'dedicate-channel'
    description: str
    assignment: ChannelAssignment = field(compare=False, hash=False)

    @property
    def cost(self) -> int:
        return _COSTS[self.kind]


@dataclass
class RepairResult:
    """Outcome of the repair search."""

    initial_cycles: list
    applied: list[Fix]
    final_assignment: ChannelAssignment
    final_cycles: list
    evaluated: int
    seconds: float

    @property
    def success(self) -> bool:
        return not self.final_cycles

    def render(self) -> str:
        lines = [
            f"repair search: {len(self.initial_cycles)} cycle(s) initially, "
            f"{self.evaluated} candidate evaluations, {self.seconds:.1f}s",
        ]
        for i, fix in enumerate(self.applied, 1):
            lines.append(f"  step {i}: {fix.description}")
        verdict = ("deadlock-free" if self.success
                   else f"{len(self.final_cycles)} cycle(s) remain")
        lines.append(f"  result: {verdict} "
                     f"(assignment {self.final_assignment.name!r})")
        return "\n".join(lines)


class DeadlockRepairer:
    """Greedy search over channel-assignment edits."""

    def __init__(
        self,
        db: ProtocolDatabase,
        specs: Sequence[ControllerMessageSpec],
        assignment: ChannelAssignment,
    ) -> None:
        self.db = db
        self.specs = tuple(specs)
        self.base = assignment
        self._counter = 0

    # -- analysis ----------------------------------------------------------------
    def _cycles(self, assignment: ChannelAssignment):
        analyzer = DeadlockAnalyzer(self.db, self.specs, assignment)
        analysis = analyzer.analyze(
            table_name=f"pdt_repair_{self._counter}",
        )
        self._counter += 1
        return analysis.cycles()

    # -- candidates ---------------------------------------------------------------
    def _fresh_channel(self, assignment: ChannelAssignment) -> str:
        existing = assignment.channels() | assignment.dedicated
        n = 0
        while f"VCN{n}" in existing:
            n += 1
        return f"VCN{n}"

    def candidates(self, assignment: ChannelAssignment, cycles) -> list[Fix]:
        cyclic = {vc for cycle in cycles for vc in cycle}
        fixes: list[Fix] = []
        seen_keys: set[tuple] = set()
        for a in assignment.assignments:
            if a.channel not in cyclic:
                continue
            key = (a.message, a.src, a.dst)
            if key in seen_keys:
                continue
            seen_keys.add(key)
            fresh = self._fresh_channel(assignment)
            fixes.append(Fix(
                kind="move",
                description=(f"move {a.message} ({a.src}->{a.dst}) from "
                             f"{a.channel} to new channel {fresh}"),
                assignment=assignment.reassigned(
                    f"{assignment.name}+mv-{a.message}", {key: fresh},
                ),
            ))
            fixes.append(Fix(
                kind="dedicate-message",
                description=(f"dedicated hardware path for {a.message} "
                             f"({a.src}->{a.dst})"),
                assignment=assignment.reassigned(
                    f"{assignment.name}+ded-{a.message}", {key: fresh},
                    dedicated=assignment.dedicated | {fresh},
                ),
            ))
        # Pairs of dedicated message paths: single-message fixes often
        # plateau (in our protocol both mread *and* mwrite must leave the
        # finite directory-to-memory channel, exactly as EXPERIMENTS.md
        # documents for the paper's fix).
        keys = sorted(seen_keys)
        for i, key_a in enumerate(keys):
            for key_b in keys[i + 1:]:
                fresh = self._fresh_channel(assignment)
                fresh2 = f"{fresh}b"
                fixes.append(Fix(
                    kind="dedicate-message",
                    description=(f"dedicated hardware paths for "
                                 f"{key_a[0]} ({key_a[1]}->{key_a[2]}) and "
                                 f"{key_b[0]} ({key_b[1]}->{key_b[2]})"),
                    assignment=assignment.reassigned(
                        f"{assignment.name}+ded-{key_a[0]}-{key_b[0]}",
                        {key_a: fresh, key_b: fresh2},
                        dedicated=assignment.dedicated | {fresh, fresh2},
                    ),
                ))
        for vc in sorted(cyclic):
            fixes.append(Fix(
                kind="dedicate-channel",
                description=f"make all of {vc} an unbounded dedicated path",
                assignment=ChannelAssignment(
                    f"{assignment.name}+ded-{vc}",
                    assignment.assignments,
                    dedicated=assignment.dedicated | {vc},
                ),
            ))
        return fixes

    # -- the loop --------------------------------------------------------------------
    def search(self, max_rounds: int = 4) -> RepairResult:
        """Repeat the paper's analyze-modify loop until deadlock-free."""
        t0 = time.perf_counter()
        evaluated = 0
        current = self.base
        initial_cycles = cycles = self._cycles(current)
        applied: list[Fix] = []

        for _ in range(max_rounds):
            if not cycles:
                break
            # Cheap fixes first (moving a message / a dedicated path for
            # one message — the paper's own steps).  A whole-channel
            # dedication is an architectural big hammer (unbounded
            # buffering for everything on it) and is only considered when
            # no cheap fix makes progress.
            all_fixes = self.candidates(current, cycles)
            best: Optional[tuple[tuple, Fix, list]] = None
            for tier in (("move", "dedicate-message"), ("dedicate-channel",)):
                for fix in all_fixes:
                    if fix.kind not in tier:
                        continue
                    fixed_cycles = self._cycles(fix.assignment)
                    evaluated += 1
                    score = (len(fixed_cycles), fix.cost)
                    if best is None or score < best[0]:
                        best = (score, fix, fixed_cycles)
                if best is not None and len(best[2]) < len(cycles):
                    break  # a fix in this tier makes progress
            if best is None or len(best[2]) >= len(cycles):
                break  # nothing helps
            _, fix, cycles = best
            applied.append(fix)
            current = fix.assignment

        return RepairResult(
            initial_cycles=initial_cycles,
            applied=applied,
            final_assignment=current,
            final_cycles=cycles,
            evaluated=evaluated,
            seconds=time.perf_counter() - t0,
        )
