"""Quad placement relations (paper section 4.1).

ASURA nodes play three roles in a transaction: ``local`` (the requester),
``home`` (the memory/directory owner), and ``remote`` (potential sharers).
Virtual channels are physical-link resources shared by every node in a
quad, so whether two assignments denote the *same* channel instance
depends on how the three roles are placed onto quads.  The paper considers
the five possible equality relations between L, H and R:

    L=H=R, L=H!=R, L!=H=R, L=R!=H, L!=H!=R

A placement acts on dependency rows by substituting each merged role with
a canonical representative, exactly as the paper rewrites R2 into R2' for
the L!=H=R placement in section 4.2.
"""

from __future__ import annotations

import enum
from typing import Mapping

__all__ = ["NodeRole", "Placement", "ALL_PLACEMENTS"]


class NodeRole(str, enum.Enum):
    """The three transaction roles a node can play (section 2.1)."""

    LOCAL = "local"
    HOME = "home"
    REMOTE = "remote"

    def __str__(self) -> str:  # store bare strings in the database
        return self.value


_L, _H, _R = NodeRole.LOCAL.value, NodeRole.HOME.value, NodeRole.REMOTE.value


class Placement(enum.Enum):
    """One of the five quad placement relations between L, H and R."""

    ALL_SAME = "L=H=R"
    LOCAL_HOME = "L=H!=R"
    HOME_REMOTE = "L!=H=R"
    LOCAL_REMOTE = "L=R!=H"
    ALL_DISTINCT = "L!=H!=R"

    @property
    def substitution(self) -> Mapping[str, str]:
        """Role -> canonical representative under this placement.

        Merged roles map to a single representative so two assignments
        that share a physical channel under the placement become equal
        after substitution.  ``home`` is kept as representative whenever it
        participates in a merge (matching the paper's rewriting of
        ``remote`` to ``home`` under L!=H=R).
        """
        if self is Placement.ALL_SAME:
            return {_L: _H, _H: _H, _R: _H}
        if self is Placement.LOCAL_HOME:
            return {_L: _H, _H: _H, _R: _R}
        if self is Placement.HOME_REMOTE:
            return {_L: _L, _H: _H, _R: _H}
        if self is Placement.LOCAL_REMOTE:
            return {_L: _L, _H: _H, _R: _L}
        return {_L: _L, _H: _H, _R: _R}

    def apply(self, role: str) -> str:
        """Canonical representative of ``role`` under this placement.

        Only the quad roles local/home/remote are subject to merging;
        other endpoint names (on-chip interfaces such as ``cache`` or
        ``dev``) pass through unchanged.
        """
        return self.substitution.get(role, role)

    def merges(self) -> frozenset[frozenset[str]]:
        """The nontrivial equivalence classes this placement induces."""
        classes: dict[str, set[str]] = {}
        for role, rep in self.substitution.items():
            classes.setdefault(rep, set()).add(role)
        return frozenset(frozenset(c) for c in classes.values() if len(c) > 1)


ALL_PLACEMENTS: tuple[Placement, ...] = tuple(Placement)
