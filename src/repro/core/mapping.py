"""Mapping debugged tables onto hardware (paper section 5).

Three stages, all expressed as SQL constraints and table operations so the
mapping itself is checkable:

1. **Extension** — implementation detail is added to a debugged table D by
   extending its schema (new columns such as ``Qstatus``/``Dqstatus``/
   ``Fdback``, and new values in existing domains such as the ``dfdback``
   request), overriding the constraints whose behaviour changes (e.g.
   ``locmsg`` issues ``retry`` when ``Qstatus = Full``), and regenerating.
   The result is the extended table ED.

2. **Partitioning** — ED is split into implementation tables, one per
   output of each hardware sub-controller, with
   ``CREATE TABLE part AS SELECT DISTINCT <inputs>, <output> FROM ED WHERE …``.

3. **Reconstruction check** — the partitions are joined back together
   branch by branch, the implementation-only rows and columns are removed,
   and SQL ``EXCEPT`` proves the original D is contained in the result
   ("it is checked using SQL constraints that the resulting table contains
   the original debugged table").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from ..telemetry import span
from .constraints import ColumnConstraint, ConstraintSet
from .database import ProtocolDatabase
from .expr import BoolExpr, TRUE, Value
from .generator import GenerationResult, TableGenerator
from .report import CheckResult, Report
from .schema import Column, Role, TableSchema
from .sqlgen import quote_ident, quote_value, to_sql
from .table import ControllerTable

__all__ = [
    "ExtensionSpec",
    "PartitionSpec",
    "ReconstructionBranch",
    "ReconstructionPlan",
    "ImplementationMapper",
    "MappingError",
]


class MappingError(RuntimeError):
    """A mapping step was mis-specified (bad partition/branch/plan)."""


@dataclass
class ExtensionSpec:
    """How to turn a debugged table into its extended table ED."""

    name: str
    extra_columns: tuple[Column, ...] = ()
    #: constraints for the new columns (and for existing columns whose
    #: behaviour the implementation changes — these replace the originals)
    constraints: Mapping[str, BoolExpr] = field(default_factory=dict)
    #: extra legal values for existing columns, e.g. {"inmsg": ("dfdback",)}
    #: — the paper's Impinmsg column table
    domain_extensions: Mapping[str, tuple[str, ...]] = field(default_factory=dict)


@dataclass(frozen=True)
class PartitionSpec:
    """One implementation table: the inputs plus one logical output port
    (a message column group, or a state-update column group), over the
    rows selected by ``where`` (paper's ``Request_remmsg`` example)."""

    name: str
    outputs: tuple[str, ...]
    where: BoolExpr = TRUE


@dataclass(frozen=True)
class ReconstructionBranch:
    """Rebuilds one row-class of ED by joining partition tables on the
    input columns and filling the outputs no partition of this class
    carries with constants (noop NULLs, typically)."""

    partitions: tuple[str, ...]
    constants: Mapping[str, Value] = field(default_factory=dict)


@dataclass
class ReconstructionPlan:
    """Union of branches, then restriction/projection back onto D.

    ``restrict`` removes implementation-only rows (e.g. ``Qstatus = Full``
    retries and ``dfdback`` feedback requests) before comparing with D.
    """

    branches: tuple[ReconstructionBranch, ...]
    restrict: BoolExpr = TRUE


class ImplementationMapper:
    """Drives extension, partitioning and the reconstruction check."""

    def __init__(
        self,
        db: ProtocolDatabase,
        base_table: ControllerTable,
        base_constraints: ConstraintSet,
    ) -> None:
        if base_constraints.schema is not base_table.schema:
            # Allow equal-by-content schemas too.
            if base_constraints.schema.column_names != base_table.schema.column_names:
                raise MappingError("constraint set does not match the base table schema")
        self.db = db
        self.base = base_table
        self.base_constraints = base_constraints

    # -- stage 1: extension ------------------------------------------------------
    def extended_schema(self, spec: ExtensionSpec) -> TableSchema:
        cols: list[Column] = []
        for c in self.base.schema.columns:
            extra = tuple(spec.domain_extensions.get(c.name, ()))
            if extra:
                c = Column(
                    name=c.name,
                    values=c.values + extra,
                    role=c.role,
                    nullable=c.nullable,
                    doc=c.doc,
                )
            cols.append(c)
        return TableSchema(spec.name, tuple(cols) + tuple(spec.extra_columns))

    def extended_constraints(self, spec: ExtensionSpec) -> ConstraintSet:
        schema = self.extended_schema(spec)
        cs = ConstraintSet(schema)
        overridden = set(spec.constraints)
        for name in self.base.schema.column_names:
            if name in overridden:
                cs.set(name, spec.constraints[name])
            else:
                base = self.base_constraints.get(name)
                if base.expr != TRUE:
                    cs.set(name, base.expr)
        for col in spec.extra_columns:
            if col.name in spec.constraints:
                cs.set(col.name, spec.constraints[col.name])
        return cs

    def extend(self, spec: ExtensionSpec) -> GenerationResult:
        """Generate ED from the extended schema and constraints."""
        with span("mapping.extend", table=spec.name):
            cs = self.extended_constraints(spec)
            return TableGenerator(
                self.db, cs, table_name=spec.name
            ).generate_incremental()

    # -- stage 2: partitioning -----------------------------------------------------
    def partition(
        self, ed: ControllerTable, specs: Sequence[PartitionSpec]
    ) -> dict[str, ControllerTable]:
        """Carve implementation tables out of ED, one per spec."""
        with span("mapping.partition", table=ed.table_name,
                  partitions=len(specs)):
            return self._partition(ed, specs)

    def _partition(
        self, ed: ControllerTable, specs: Sequence[PartitionSpec]
    ) -> dict[str, ControllerTable]:
        out: dict[str, ControllerTable] = {}
        input_names = ed.schema.input_names
        in_cols = ", ".join(quote_ident(c) for c in input_names)
        for spec in specs:
            for col in spec.outputs:
                ed.schema.column(col)  # validate
            where = to_sql(spec.where)
            out_cols = ", ".join(quote_ident(c) for c in spec.outputs)
            sql = (
                f"SELECT DISTINCT {in_cols}, {out_cols} "
                f"FROM {quote_ident(ed.table_name)} WHERE {where}"
            )
            self.db.create_table_as(spec.name, sql)
            sub_schema = ed.schema.projected(
                spec.name, tuple(input_names) + tuple(spec.outputs)
            )
            out[spec.name] = ControllerTable(self.db, sub_schema, spec.name)
        return out

    # -- stage 3: reconstruction -------------------------------------------------------
    def reconstruct(
        self,
        ed_schema: TableSchema,
        parts: Mapping[str, ControllerTable],
        plan: ReconstructionPlan,
        table_name: str = "reconstructed",
    ) -> ControllerTable:
        """Join the partitions back into (a superset of) ED."""
        with span("mapping.reconstruct", table=table_name,
                  branches=len(plan.branches)):
            return self._reconstruct(ed_schema, parts, plan, table_name)

    def _reconstruct(
        self,
        ed_schema: TableSchema,
        parts: Mapping[str, ControllerTable],
        plan: ReconstructionPlan,
        table_name: str,
    ) -> ControllerTable:
        input_names = ed_schema.input_names
        selects: list[str] = []
        for branch in plan.branches:
            if not branch.partitions:
                raise MappingError("reconstruction branch with no partitions")
            missing = [p for p in branch.partitions if p not in parts]
            if missing:
                raise MappingError(f"unknown partitions {missing} in branch")
            first = branch.partitions[0]
            provider: dict[str, int] = {}
            for i, pname in enumerate(branch.partitions):
                for col in parts[pname].schema.output_names:
                    provider.setdefault(col, i)
            select_cols = []
            for name in ed_schema.column_names:
                q = quote_ident(name)
                if name in input_names:
                    select_cols.append(f"t0.{q} AS {q}")
                elif name in provider:
                    select_cols.append(f"t{provider[name]}.{q} AS {q}")
                elif name in branch.constants:
                    select_cols.append(
                        f"{quote_value(branch.constants[name])} AS {q}"
                    )
                else:
                    raise MappingError(
                        f"reconstruction branch covers no source for column {name!r}"
                    )
            joins = [f"{quote_ident(first)} t0"]
            for i, p in enumerate(branch.partitions[1:], start=1):
                conds = " AND ".join(
                    f"t0.{quote_ident(c)} IS t{i}.{quote_ident(c)}"
                    for c in input_names
                )
                joins.append(f"JOIN {quote_ident(p)} t{i} ON {conds}")
            selects.append(
                "SELECT " + ", ".join(select_cols) + " FROM " + " ".join(joins)
            )
        sql = " UNION ".join(selects)
        self.db.create_table_as(table_name, sql)
        return ControllerTable(self.db, ed_schema, table_name)

    def check_preserved(
        self,
        reconstructed: ControllerTable,
        plan: ReconstructionPlan,
        check_name: str = "mapping-preserves-debugged-table",
    ) -> CheckResult:
        """SQL containment: every row of the debugged table D must appear
        in the reconstructed table after restriction and projection."""
        d_cols = self.base.schema.column_names
        cols = ", ".join(quote_ident(c) for c in d_cols)
        restricted = (
            f"SELECT DISTINCT {cols} FROM {quote_ident(reconstructed.table_name)} "
            f"WHERE {to_sql(plan.restrict)}"
        )
        with span("mapping.check", check=check_name) as sp:
            diff = self.db.query(
                f"SELECT {cols} FROM {quote_ident(self.base.table_name)} "
                f"EXCEPT {restricted}"
            )
        return CheckResult(
            name=check_name,
            passed=not diff,
            description=(
                f"D ({self.base.row_count} rows) contained in reconstruction "
                f"({reconstructed.row_count} rows)"
            ),
            details=diff[:20],
            seconds=sp.seconds,
        )
