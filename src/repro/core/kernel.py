"""Compiled transition kernels.

A :class:`KernelTable` is a drop-in replacement for the lookup surface of
:class:`~repro.core.table.ControllerTable` that answers probes from a
generated integer-indexed dispatch function (see
:func:`~repro.core.codegen.generate_dispatch_source`) instead of issuing
one SQL query per transition.  Semantics are bit-identical: stored NULL
inputs are wildcards, a ``None`` (or out-of-domain) probe value matches
only wildcard rows, rowids and row dicts match what the SQL path returns,
and the error classes *and message strings* are the same — the explorer
pins hole-violation details on those strings, so the compiled and
interpreted kernels must raise identically.

:func:`compile_system_kernels` compiles the tables a simulator executes;
:class:`KernelSystem` wraps them in the minimal system shape
:class:`~repro.sim.system.Simulator` needs, which is how worker pools
rebuild a simulator from pickled rows without shipping a database.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from .codegen import compile_dispatch
from .schema import SchemaError, TableSchema
from .table import AmbiguousMatchError, ControllerTable, NoMatchError

__all__ = [
    "KernelTable",
    "KernelSystem",
    "SIMULATED_TABLES",
    "compile_system_kernels",
]

# The tables a Simulator executes (directory, memory, cache, network, IO).
SIMULATED_TABLES = ("D", "M", "C", "N", "IO")


class KernelTable:
    """Dispatch-compiled lookup over a snapshot of a controller table."""

    def __init__(
        self,
        schema: TableSchema,
        rows: Sequence[tuple[int, dict]],
        table_name: Optional[str] = None,
    ) -> None:
        self.schema = schema
        self.table_name = table_name or schema.name
        self._rows = tuple((int(rid), dict(row)) for rid, row in rows)
        self._input_names = schema.input_names
        self._input_set = frozenset(self._input_names)
        self._partial_cache: dict = {}
        self._dispatch = compile_dispatch(schema, self._rows, "_dispatch")

    @classmethod
    def from_table(cls, table: ControllerTable) -> "KernelTable":
        return cls(table.schema, table.rows_with_ids(), table.table_name)

    # A kernel pickles as (schema, rows) and recompiles on load — worker
    # pools ship rows once per pool, never a live sqlite connection.
    def __reduce__(self):
        return (KernelTable, (self.schema, self._rows, self.table_name))

    # -- row access ------------------------------------------------------------
    @property
    def row_count(self) -> int:
        return len(self._rows)

    def rows(self) -> list[dict]:
        return [dict(row) for _, row in self._rows]

    def rows_with_ids(self) -> list[tuple[int, dict]]:
        return [(rid, dict(row)) for rid, row in self._rows]

    # -- lookup ----------------------------------------------------------------
    def _match(self, inputs: Mapping[str, object]) -> list[tuple[int, dict]]:
        """Partial NULL-wildcard match, memoized per input combination.

        Matches ``ControllerTable._match``: unconstrained input columns
        may be omitted, unknown names raise, results come in rowid order.
        Partial probes are rare (one call site) and drawn from a small
        set of combinations, so a linear scan behind a cache is enough.
        """
        for name in inputs:
            if name not in self._input_set:
                raise SchemaError(
                    f"{name!r} is not an input column of {self.schema.name!r}"
                )
        key = tuple(sorted(inputs.items(), key=lambda kv: kv[0]))
        cached = self._partial_cache.get(key)
        if cached is None:
            cached = [
                (rid, row)
                for rid, row in self._rows
                if all(
                    row[c] is None or row[c] == v for c, v in inputs.items()
                )
            ]
            self._partial_cache[key] = cached
        return cached

    def match_rows(self, inputs: Mapping[str, object]) -> list[dict]:
        return [row for _, row in self._match(inputs)]

    def lookup_id(self, **inputs) -> tuple[int, dict]:
        missing = self._input_set - set(inputs)
        if missing:
            raise SchemaError(f"lookup missing input columns {sorted(missing)}")
        for name in inputs:
            if name not in self._input_set:
                raise SchemaError(
                    f"{name!r} is not an input column of {self.schema.name!r}"
                )
        hits = self._dispatch(*(inputs[c] for c in self._input_names))
        if not hits:
            raise NoMatchError(
                f"{self.schema.name}: no row matches inputs {dict(inputs)!r}"
            )
        if len(hits) > 1:
            raise AmbiguousMatchError(
                f"{self.schema.name}: {len(hits)} rows match inputs "
                f"{dict(inputs)!r}"
            )
        return self._rows[hits[0]]

    def lookup(self, **inputs) -> dict:
        return self.lookup_id(**inputs)[1]

    def try_lookup(self, **inputs) -> Optional[dict]:
        try:
            return self.lookup(**inputs)
        except NoMatchError:
            return None

    def __repr__(self) -> str:
        return (
            f"KernelTable({self.schema.name!r}, rows={self.row_count}, "
            f"cols={len(self.schema)})"
        )


def compile_system_kernels(system) -> dict[str, KernelTable]:
    """Compile the simulated tables of a protocol system into kernels."""
    return {
        name: KernelTable.from_table(system.tables[name])
        for name in SIMULATED_TABLES
        if name in system.tables
    }


class KernelSystem:
    """The minimal system surface a :class:`Simulator` consumes.

    Holds compiled kernel tables plus the channel assignments; worker
    pools reconstruct one of these from pickled kernels instead of
    cloning a database-backed :class:`AsuraSystem`.
    """

    def __init__(
        self,
        tables: Mapping[str, KernelTable],
        channel_assignments: Mapping[str, object],
    ) -> None:
        self.tables = dict(tables)
        self.channel_assignments = dict(channel_assignments)
