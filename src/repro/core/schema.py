"""Controller-table schemas.

A controller (paper section 2.1) is a multi-input, multi-output state
machine stored as a table: input columns describe the incoming message and
the controller state, output columns describe the emitted messages and the
next state.  Each column has a *column table* listing its legal values plus
the special NULL value (dontcare for inputs, noop for outputs).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence

from .expr import Row, Value

__all__ = ["Role", "Column", "TableSchema", "SchemaError"]


class SchemaError(ValueError):
    """Raised for malformed schemas or rows that violate a schema."""


class Role(enum.Enum):
    """Whether a column is an input to or an output of the controller."""

    INPUT = "input"
    OUTPUT = "output"


@dataclass(frozen=True)
class Column:
    """One column of a controller table.

    ``values`` are the legal non-NULL values (the paper's column table
    minus NULL); ``nullable`` adds NULL to the domain.  Output columns are
    almost always nullable (NULL = noop); input columns are nullable when a
    dontcare row is meaningful.
    """

    name: str
    values: tuple[str, ...]
    role: Role
    nullable: bool = True
    doc: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("column name must be non-empty")
        seen: set[str] = set()
        for v in self.values:
            if v is None:
                raise SchemaError(
                    f"column {self.name!r}: NULL is implied by nullable=True, "
                    "do not list it in values"
                )
            if not isinstance(v, str):
                raise SchemaError(f"column {self.name!r}: values must be strings, got {v!r}")
            if v in seen:
                raise SchemaError(f"column {self.name!r}: duplicate value {v!r}")
            seen.add(v)
        if not self.values and not self.nullable:
            raise SchemaError(f"column {self.name!r} has an empty domain")

    @property
    def domain(self) -> tuple[Value, ...]:
        """Full domain including NULL when nullable."""
        if self.nullable:
            return (None,) + self.values
        return self.values

    @property
    def domain_size(self) -> int:
        return len(self.values) + (1 if self.nullable else 0)

    def admits(self, value: Value) -> bool:
        if value is None:
            return self.nullable
        return value in self.values


class TableSchema:
    """An ordered collection of input and output columns."""

    def __init__(self, name: str, columns: Sequence[Column]) -> None:
        if not name:
            raise SchemaError("table name must be non-empty")
        names = [c.name for c in columns]
        dupes = {n for n in names if names.count(n) > 1}
        if dupes:
            raise SchemaError(f"table {name!r}: duplicate columns {sorted(dupes)}")
        self.name = name
        self.columns: tuple[Column, ...] = tuple(columns)
        self._by_name: dict[str, Column] = {c.name: c for c in self.columns}

    # -- accessors ----------------------------------------------------------
    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    @property
    def inputs(self) -> tuple[Column, ...]:
        return tuple(c for c in self.columns if c.role is Role.INPUT)

    @property
    def outputs(self) -> tuple[Column, ...]:
        return tuple(c for c in self.columns if c.role is Role.OUTPUT)

    @property
    def input_names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.inputs)

    @property
    def output_names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.outputs)

    def column(self, name: str) -> Column:
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(f"table {self.name!r} has no column {name!r}") from None

    def has_column(self, name: str) -> bool:
        return name in self._by_name

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __len__(self) -> int:
        return len(self.columns)

    def __repr__(self) -> str:
        return (
            f"TableSchema({self.name!r}, {len(self.inputs)} inputs, "
            f"{len(self.outputs)} outputs)"
        )

    # -- domain arithmetic ----------------------------------------------------
    def cross_product_size(self, columns: Optional[Iterable[str]] = None) -> int:
        """Cardinality of the cross product of the named column tables.

        This is the row count the monolithic generator's join must
        enumerate — the quantity behind the paper's 6-hour observation.
        """
        names = tuple(columns) if columns is not None else self.column_names
        return math.prod(self.column(n).domain_size for n in names)

    # -- row validation -------------------------------------------------------
    def validate_row(self, row: Row) -> None:
        """Check a row maps every column to a value in its domain."""
        for c in self.columns:
            if c.name not in row:
                raise SchemaError(f"row missing column {c.name!r} of table {self.name!r}")
            v = row[c.name]
            if not c.admits(v):
                raise SchemaError(
                    f"table {self.name!r}, column {c.name!r}: value {v!r} "
                    f"not in domain {c.domain!r}"
                )
        extra = set(row) - set(self._by_name)
        if extra:
            raise SchemaError(f"row has columns {sorted(extra)} not in table {self.name!r}")

    # -- derivation -----------------------------------------------------------
    def extended(self, name: str, extra: Sequence[Column]) -> "TableSchema":
        """A new schema with ``extra`` columns appended (paper section 5:
        the extended table ED adds implementation columns to D)."""
        return TableSchema(name, tuple(self.columns) + tuple(extra))

    def projected(self, name: str, columns: Sequence[str]) -> "TableSchema":
        """A new schema keeping only the named columns, in the given order."""
        return TableSchema(name, tuple(self.column(c) for c in columns))
