"""Analysis utilities: cycle detection and protocol statistics."""

from .cycles import (
    canonical_cycle,
    cyclic_vertices_networkx,
    cyclic_vertices_sql,
    find_cycles_networkx,
)

__all__ = [
    "canonical_cycle",
    "cyclic_vertices_networkx",
    "cyclic_vertices_sql",
    "find_cycles_networkx",
]

from .stats import ProtocolStats, collect

__all__ += ["ProtocolStats", "collect"]

from .coverage import CoverageRecorder, CoverageReport, TableCoverage, coverage_report

__all__ += ["CoverageRecorder", "CoverageReport", "TableCoverage", "coverage_report"]
