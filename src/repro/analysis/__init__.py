"""Analysis utilities: cycle detection and protocol statistics."""

from .cycles import (
    canonical_cycle,
    cyclic_vertices_networkx,
    cyclic_vertices_sql,
    find_cycles_networkx,
)

__all__ = [
    "canonical_cycle",
    "cyclic_vertices_networkx",
    "cyclic_vertices_sql",
    "find_cycles_networkx",
]

from .stats import ProtocolStats, collect

__all__ += ["ProtocolStats", "collect"]

from .coverage import (
    LEDGER_COLUMNS,
    LEDGER_TABLE,
    CoverageRecorder,
    CoverageReport,
    TableCoverage,
    coverage_report,
    distinct_rows,
    ledger_rows,
    read_ledger,
    write_ledger,
)

__all__ += [
    "CoverageRecorder", "CoverageReport", "TableCoverage", "coverage_report",
    "LEDGER_TABLE", "LEDGER_COLUMNS", "read_ledger", "write_ledger",
    "ledger_rows", "distinct_rows",
]

from .closedloop import (
    REPAIR_BENCH_SCHEMA,
    build_repair_report,
    compare_repair_baseline,
    guided_coverage_delta,
)

__all__ += [
    "REPAIR_BENCH_SCHEMA", "build_repair_report", "compare_repair_baseline",
    "guided_coverage_delta",
]
