"""The closed-loop report: repair outcomes + coverage deltas, CI-gated.

This module ties the two halves of the loop together into one committed
artifact (``BENCH_repair.json``):

* **repair** — the analyze-modify search from the paper's pre-fix V
  (Section 4 / Figure 4), with every applied fix re-verified through the
  invariant suite, both deadlock engines, and a bounded exploration of
  the repaired assignment;
* **coverage** — the guided-workload claim, measured: for each seed, a
  coverage-guided workload must exercise strictly more distinct
  controller-table rows than the fixed fig2+random workloads at the
  same op and step budget.

:func:`compare_repair_baseline` gates CI the way
:func:`repro.faults.campaign.compare_to_baseline` does for detection
matrices: the committed report's claims (repair succeeded, every fix
re-verified, guided beats fixed on every seed) must keep holding, and
the repaired assignment must never get more expensive.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..telemetry import get_tracer
from .coverage import CoverageRecorder, distinct_rows

__all__ = [
    "REPAIR_BENCH_SCHEMA",
    "guided_coverage_delta",
    "build_repair_report",
    "compare_repair_baseline",
]

#: schema tag of the closed-loop report (``BENCH_repair.json``).
REPAIR_BENCH_SCHEMA = "repro.closedloop/v1"


def guided_coverage_delta(system, seed: int = 0, n_ops: int = 40,
                          max_steps: int = 400,
                          assignment: str = "v5d",
                          epsilon: float = 0.2) -> dict:
    """Distinct-row coverage of the fixed workloads vs the guided one.

    The fixed side runs the Figure 2 scenario plus the seeded random
    workload (the exact pair the mutation campaign's simulation layer
    uses) under one merged recorder; the guided side gets the *same*
    ``n_ops`` op budget and ``max_steps`` step budget.  All three
    simulations are deterministic per seed, so the delta is a stable,
    committable number."""
    from ..sim import (ensure_recorder, figure2_scenario, guided_workload,
                       random_workload)

    merged = CoverageRecorder()
    for workload in (
        figure2_scenario(system, assignment=assignment),
        random_workload(system, assignment=assignment, seed=seed,
                        n_ops=n_ops),
    ):
        recorder = ensure_recorder(workload.simulator)
        workload.run(max_steps=max_steps)
        merged.merge(recorder)
    fixed = distinct_rows(merged)

    guided = guided_workload(system, assignment=assignment, seed=seed,
                             n_ops=n_ops, epsilon=epsilon,
                             ledger=CoverageRecorder())
    guided.run(max_steps=max_steps)
    guided_rows = distinct_rows(guided.simulator.recorder)
    get_tracer().incr("coverage.delta.measured")
    return {
        "seed": seed,
        "fixed_rows": fixed,
        "guided_rows": guided_rows,
        "delta": guided_rows - fixed,
    }


def build_repair_report(system=None, assignment: str = "v5",
                        rounds: int = 4, oracle_depth: int = 4,
                        seeds: Sequence[int] = (0, 1, 2),
                        n_ops: int = 40, max_steps: int = 400,
                        result=None) -> dict:
    """The full closed-loop report document.

    ``result`` may carry an already-searched (and re-verified)
    :class:`~repro.core.repair.RepairResult` so CLI callers do not run
    the search twice; otherwise the search runs here, from the paper's
    pre-fix ``assignment`` on a pristine system."""
    from ..core.repair import DeadlockRepairer

    own = system is None
    if own:
        from ..protocols.family import build_variant
        system = build_variant("mesi")
    try:
        if result is None:
            repairer = DeadlockRepairer.for_system(system, assignment)
            result = repairer.search(max_rounds=rounds)
            repairer.reverify(result, oracle_depth=oracle_depth)
        coverage = [guided_coverage_delta(system, seed=s, n_ops=n_ops,
                                          max_steps=max_steps)
                    for s in seeds]
    finally:
        if own:
            system.db.close()
    variant = getattr(getattr(system, "spec", None), "key", "mesi")
    doc = {
        "schema": REPAIR_BENCH_SCHEMA,
        "assignment": assignment,
        "rounds": rounds,
        "oracle_depth": oracle_depth,
        "repair": result.to_dict(),
        "coverage": {"n_ops": n_ops, "max_steps": max_steps,
                     "runs": coverage},
    }
    if variant != "mesi":
        doc["variant"] = variant
    return doc


def _repair_holds(doc: dict) -> bool:
    repair = doc.get("repair") or {}
    return bool(repair.get("success")
                and all(v.get("ok")
                        for v in repair.get("reverified", [])))


def compare_repair_baseline(current: dict,
                            baseline: dict) -> list[str]:
    """Closed-loop regressions of ``current`` vs a committed baseline.

    Returns human-readable failure strings (empty = no regression):
    the repair search must keep succeeding with every fix re-verified,
    the repaired V must not get more expensive than the committed one,
    and the guided workload must keep strictly beating the fixed
    workloads on every measured seed."""
    failures: list[str] = []
    if baseline.get("schema") != REPAIR_BENCH_SCHEMA:
        return [f"baseline has schema {baseline.get('schema')!r}, "
                f"expected {REPAIR_BENCH_SCHEMA!r}"]
    for key in ("assignment", "rounds", "oracle_depth", "variant"):
        if baseline.get(key) != current.get(key):
            failures.append(
                f"report parameter {key!r} differs from baseline "
                f"({current.get(key)!r} vs {baseline.get(key)!r}); "
                f"regenerate the baseline")
    base_cov, cur_cov = (d.get("coverage") or {} for d in
                         (baseline, current))
    for key in ("n_ops", "max_steps"):
        if base_cov.get(key) != cur_cov.get(key):
            failures.append(
                f"coverage budget {key!r} differs from baseline "
                f"({cur_cov.get(key)!r} vs {base_cov.get(key)!r}); "
                f"regenerate the baseline")
    if failures:
        return failures

    if _repair_holds(baseline) and not _repair_holds(current):
        repair = current.get("repair") or {}
        why = ("search did not converge" if not repair.get("success")
               else "a fix failed re-verification")
        failures.append(f"baseline repair succeeded with every fix "
                        f"re-verified; now: {why}")
    base_cost = (baseline.get("repair") or {}).get("total_cost")
    cur_cost = (current.get("repair") or {}).get("total_cost")
    if (base_cost is not None and cur_cost is not None
            and cur_cost > base_cost):
        failures.append(f"repaired assignment got more expensive: "
                        f"total_cost {base_cost} -> {cur_cost}")

    base_runs = {r.get("seed"): r for r in base_cov.get("runs", [])}
    for run in cur_cov.get("runs", []):
        seed = run.get("seed")
        if run.get("delta", 0) <= 0:
            failures.append(
                f"guided workload no longer beats the fixed workloads "
                f"at seed {seed} ({run.get('guided_rows')} vs "
                f"{run.get('fixed_rows')} distinct rows)")
        base_run = base_runs.get(seed)
        if base_run and run.get("guided_rows", 0) < base_run.get(
                "guided_rows", 0):
            failures.append(
                f"guided coverage regressed at seed {seed}: "
                f"{base_run.get('guided_rows')} -> "
                f"{run.get('guided_rows')} distinct rows; "
                f"regenerate the baseline if intentional")
    return failures
