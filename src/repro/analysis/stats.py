"""Protocol-wide statistics (the paper's size claims).

Section 3: "This table is made of 30 columns and 500 rows and includes
around 40 Busy states and considers all transaction interleavings allowed
in the protocol."  Section 6: "A total of 8 controller database tables
were automatically generated."  This module collects the corresponding
numbers from a generated system so benchmarks and EXPERIMENTS.md report
them from one source.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..protocols import messages as M

__all__ = ["ProtocolStats", "collect"]


@dataclass
class ProtocolStats:
    controllers: int
    message_types: int
    request_types: int
    response_types: int
    busy_states: int
    directory_columns: int
    directory_rows: int
    directory_input_space: int
    total_rows: int
    total_columns: int
    generation_seconds: float
    per_table: dict

    def paper_comparison(self) -> list[tuple[str, str, str]]:
        """(quantity, paper value, ours) rows for EXPERIMENTS.md."""
        return [
            ("controller tables", "8", str(self.controllers)),
            ("message types", "~50", str(self.message_types)),
            ("directory table columns", "30", str(self.directory_columns)),
            ("directory table rows", "~500", str(self.directory_rows)),
            ("busy states", "~40", str(self.busy_states)),
            ("generation time", "minutes (Sparc 10)",
             f"{self.generation_seconds:.3f}s"),
        ]


def collect(system) -> ProtocolStats:
    """Gather statistics from a generated family member (the MESI
    baseline :class:`AsuraSystem` or any other :class:`FamilySystem`).
    The busy-state count comes from the system itself; the message
    catalog is family-wide (variants reuse it, MOESI adds ``owb``)."""
    raw = system.stats()
    d = system.tables["D"]
    return ProtocolStats(
        controllers=raw["controllers"],
        message_types=len(M.CATALOG),
        request_types=len(M.REQUEST_NAMES),
        response_types=len(M.RESPONSE_NAMES),
        busy_states=raw["busy_states"],
        directory_columns=raw["directory_columns"],
        directory_rows=raw["directory_rows"],
        directory_input_space=d.schema.cross_product_size(d.schema.input_names),
        total_rows=raw["total_rows"],
        total_columns=raw["total_columns"],
        generation_seconds=raw["generation_seconds"],
        per_table=raw["per_table"],
    )
