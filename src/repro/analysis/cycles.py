"""Cycle detection over virtual-channel dependency graphs.

Two independent implementations, cross-checked by property tests:

* :func:`find_cycles_networkx` — enumerate elementary cycles with
  ``networkx.simple_cycles``.
* :func:`cyclic_vertices_sql` — pure SQL, the way the paper's database
  would do it: a recursive reachability query; a vertex is on a cycle iff
  it reaches itself.

Both operate on plain ``(src, dst)`` edge iterables so they are usable
outside the deadlock analyzer (e.g. on ad-hoc graphs in tests).
"""

from __future__ import annotations

import sqlite3
from typing import Iterable, Sequence

import networkx as nx

__all__ = [
    "find_cycles_networkx",
    "cyclic_vertices_networkx",
    "cyclic_vertices_sql",
    "canonical_cycle",
]

Edge = tuple[str, str]


def canonical_cycle(cycle: Sequence[str]) -> tuple[str, ...]:
    """Rotate a cycle so it starts at its smallest vertex, giving a
    canonical form usable as a set element."""
    if not cycle:
        return ()
    i = min(range(len(cycle)), key=lambda k: cycle[k])
    return tuple(cycle[i:]) + tuple(cycle[:i])


def find_cycles_networkx(edges: Iterable[Edge]) -> list[tuple[str, ...]]:
    """All elementary cycles, each in canonical rotation, sorted."""
    g = nx.DiGraph()
    g.add_edges_from(edges)
    cycles = {canonical_cycle(c) for c in nx.simple_cycles(g)}
    return sorted(cycles)


def cyclic_vertices_networkx(edges: Iterable[Edge]) -> set[str]:
    """Vertices lying on at least one cycle (incl. self-loops)."""
    g = nx.DiGraph()
    g.add_edges_from(edges)
    out: set[str] = set()
    for comp in nx.strongly_connected_components(g):
        if len(comp) > 1:
            out |= comp
        else:
            (v,) = comp
            if g.has_edge(v, v):
                out.add(v)
    return out


def cyclic_vertices_sql(edges: Iterable[Edge]) -> set[str]:
    """Same as :func:`cyclic_vertices_networkx`, computed by a recursive
    SQL reachability query in a scratch SQLite database."""
    conn = sqlite3.connect(":memory:")
    try:
        conn.execute("CREATE TABLE edges (src TEXT, dst TEXT)")
        conn.executemany(
            "INSERT INTO edges VALUES (?, ?)", [(s, d) for s, d in edges]
        )
        rows = conn.execute(
            """
            WITH RECURSIVE reach(origin, dst) AS (
                SELECT src, dst FROM edges
                UNION
                SELECT reach.origin, edges.dst
                FROM reach JOIN edges ON reach.dst = edges.src
            )
            SELECT DISTINCT origin FROM reach WHERE origin = dst
            """
        ).fetchall()
        return {r[0] for r in rows}
    finally:
        conn.close()
