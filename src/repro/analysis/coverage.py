"""Transition coverage of controller tables by simulation.

The development cycle the paper replaces ends with "the implementation is
tested and certified correct using simulation by running specific as well
as random tests" — and the first question about any simulation campaign
is *which transitions did it actually exercise?*  With the specification
stored as database tables, coverage is a first-class query: the simulator
records the rowid of every table row it fires, and the report lists hit
counts and the uncovered rows per controller (in SQL, of course).

Coverage is also *persistent*: :func:`write_ledger` merges a recorder's
hits into the :data:`LEDGER_TABLE` row-coverage ledger stored inside the
protocol database itself (alongside ``__explore_summary``), so coverage
accumulates across simulation runs of the same ``--db`` file and the
guided workload generator (:func:`repro.sim.workloads.guided_workload`)
can steer new traffic toward rows no previous run has exercised.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Mapping, Optional

from ..core.table import ControllerTable
from ..core.sqlgen import quote_ident
from ..telemetry import get_tracer

__all__ = [
    "CoverageRecorder",
    "TableCoverage",
    "CoverageReport",
    "coverage_report",
    "LEDGER_TABLE",
    "LEDGER_COLUMNS",
    "read_ledger",
    "write_ledger",
    "ledger_rows",
    "distinct_rows",
]

#: row-coverage ledger table persisted inside the protocol database —
#: one row per (controller table, rowid) ever fired by a simulation.
LEDGER_TABLE = "__coverage_ledger"

#: columns of :data:`LEDGER_TABLE` (all TEXT, like ``__explore_summary``).
LEDGER_COLUMNS = ("table_name", "row_id", "hits")


class CoverageRecorder:
    """Accumulates (table, rowid) hit counts during simulation."""

    def __init__(self) -> None:
        self.hits: dict[str, Counter] = {}

    def record(self, table: str, rowid: int) -> None:
        self.hits.setdefault(table, Counter())[rowid] += 1

    def total_hits(self) -> int:
        return sum(sum(c.values()) for c in self.hits.values())

    def merge(self, other: "CoverageRecorder") -> None:
        for table, counter in other.hits.items():
            self.hits.setdefault(table, Counter()).update(counter)


@dataclass
class TableCoverage:
    table: str
    total_rows: int
    covered_rows: int
    hit_count: int
    uncovered: list[dict] = field(default_factory=list)

    @property
    def fraction(self) -> float:
        if self.total_rows == 0:
            return 1.0
        return self.covered_rows / self.total_rows

    def __str__(self) -> str:
        return (f"{self.table}: {self.covered_rows}/{self.total_rows} rows "
                f"({100 * self.fraction:.0f}%), {self.hit_count} firings")


@dataclass
class CoverageReport:
    per_table: dict[str, TableCoverage]

    @property
    def overall_fraction(self) -> float:
        total = sum(t.total_rows for t in self.per_table.values())
        covered = sum(t.covered_rows for t in self.per_table.values())
        return covered / total if total else 1.0

    def render(self, show_uncovered: int = 5) -> str:
        lines = [f"transition coverage "
                 f"({100 * self.overall_fraction:.0f}% overall):"]
        for cov in self.per_table.values():
            lines.append(f"  {cov}")
            for row in cov.uncovered[:show_uncovered]:
                pretty = ", ".join(
                    f"{k}={v}" for k, v in row.items() if v is not None
                )
                lines.append(f"      uncovered: {pretty}")
            extra = len(cov.uncovered) - show_uncovered
            if extra > 0:
                lines.append(f"      ... and {extra} more")
        return "\n".join(lines)


def coverage_report(
    recorder: CoverageRecorder,
    tables: Mapping[str, ControllerTable],
    max_uncovered: Optional[int] = 50,
) -> CoverageReport:
    """Build per-table coverage from a recorder and the live tables."""
    per_table: dict[str, TableCoverage] = {}
    for name, table in tables.items():
        counter = recorder.hits.get(name, Counter())
        hit_ids = sorted(counter)
        t = quote_ident(table.table_name)
        if hit_ids:
            ids = ", ".join(str(i) for i in hit_ids)
            uncovered_sql = f"SELECT * FROM {t} WHERE rowid NOT IN ({ids})"
        else:
            uncovered_sql = f"SELECT * FROM {t}"
        uncovered = table.db.query(uncovered_sql)
        if max_uncovered is not None:
            uncovered = uncovered[:max_uncovered]
        per_table[name] = TableCoverage(
            table=name,
            total_rows=table.row_count,
            covered_rows=len(hit_ids),
            hit_count=sum(counter.values()),
            uncovered=[
                {c: r[c] for c in table.schema.column_names} for r in uncovered
            ],
        )
    return CoverageReport(per_table=per_table)


# -- the persisted ledger -----------------------------------------------------
def distinct_rows(recorder: CoverageRecorder) -> int:
    """Number of distinct (table, rowid) pairs the recorder has seen."""
    return sum(len(c) for c in recorder.hits.values())


def read_ledger(db) -> CoverageRecorder:
    """The accumulated row-coverage ledger of ``db`` as a recorder
    (empty if no simulation has ever written one)."""
    recorder = CoverageRecorder()
    if not db.table_exists(LEDGER_TABLE):
        return recorder
    for row in db.query(
            f"SELECT table_name, row_id, hits FROM {quote_ident(LEDGER_TABLE)}"):
        counter = recorder.hits.setdefault(str(row["table_name"]), Counter())
        counter[int(row["row_id"])] += int(row["hits"])
    return recorder


def write_ledger(db, recorder: CoverageRecorder, merge: bool = True) -> int:
    """Persist ``recorder`` into :data:`LEDGER_TABLE`, merging with any
    ledger already in the database (``merge=False`` replaces it).

    Rows are emitted in sorted (table, rowid) order and all values are
    written as text, so two runs that exercised the same rows the same
    number of times produce byte-identical tables — the property the
    journal-resume tests pin.  Returns the number of ledger rows.
    """
    merged = CoverageRecorder()
    if merge:
        merged.merge(read_ledger(db))
    merged.merge(recorder)
    rows = [
        {"table_name": table, "row_id": str(row_id), "hits": str(hits)}
        for table in sorted(merged.hits)
        for row_id, hits in sorted(merged.hits[table].items())
    ]
    n = db.create_table_from_rows(LEDGER_TABLE, LEDGER_COLUMNS, rows)
    tracer = get_tracer()
    tracer.incr("coverage.ledger.writes")
    tracer.incr("coverage.ledger.rows", len(rows))
    return n


def ledger_rows(db) -> list[dict]:
    """The raw ledger rows in their stored order (for byte-identity
    assertions; empty list when no ledger exists)."""
    if not db.table_exists(LEDGER_TABLE):
        return []
    return db.query(
        f"SELECT table_name, row_id, hits FROM {quote_ident(LEDGER_TABLE)}")
